//! The `warden-serve` wire protocol.
//!
//! Frames are length-prefixed: a 4-byte magic (`WSRV`), one version byte,
//! a little-endian `u32` payload length, then the payload. Payloads are
//! encoded with the workspace's hand-rolled [`warden_mem::codec`] — typed
//! errors on every malformed byte, never a panic, and every strict prefix
//! of a valid frame fails to decode (the property `tests/proptest_serve.rs`
//! pins for every request/response variant).
//!
//! The framing layer enforces a size cap *before* reading a payload, so a
//! hostile or corrupt length field is a typed
//! [`ServeError::FrameTooLarge`], not an allocation storm. The server
//! answers an oversized request frame with [`Response::TooLarge`] and
//! closes the connection.

use crate::error::ServeError;
use std::io::{Read, Write};
use std::time::{Duration, Instant};
use warden_coherence::ProtocolId;
use warden_mem::codec::{CodecError, Decoder, Encoder};
use warden_obs::MetricsRegistry;
use warden_pbbs::{Bench, Scale};
use warden_sim::{MachineConfig, SimError, SimStats};

/// Magic bytes opening every frame.
pub const FRAME_MAGIC: [u8; 4] = *b"WSRV";
/// Wire-protocol version carried in every frame header.
///
/// History:
/// * **1** — initial protocol.
/// * **2** — [`Response::Outcome`] replaced its `cache_hit` boolean with
///   the [`ServedFrom`] provenance tag (memory hit / coalesced / disk hit
///   / prefix resume / full simulation). Version-1 peers are rejected with
///   a typed `BadVersion`, never misdecoded.
pub const PROTO_VERSION: u8 = 2;
/// Default cap on a frame payload (requests are tiny; responses carry one
/// statistics block — a megabyte is generous for both directions).
pub const DEFAULT_MAX_FRAME: u64 = 1 << 20;

const FRAME_HEADER: usize = 4 + 1 + 4;

/// Write one frame (header + payload) to `w`.
pub fn write_frame(w: &mut impl Write, payload: &[u8], max: u64) -> Result<(), ServeError> {
    if payload.len() as u64 > max {
        return Err(ServeError::FrameTooLarge {
            len: payload.len() as u64,
            max,
        });
    }
    let mut buf = Vec::with_capacity(FRAME_HEADER + payload.len());
    buf.extend_from_slice(&FRAME_MAGIC);
    buf.push(PROTO_VERSION);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf).map_err(ServeError::Io)?;
    w.flush().map_err(ServeError::Io)
}

/// What one attempt to read a frame produced.
#[derive(Debug)]
pub enum FrameEvent {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// The peer closed the stream at a frame boundary (clean EOF).
    Eof,
    /// No bytes arrived within the stream's read timeout while *between*
    /// frames — the connection is idle, not broken. (A timeout in the
    /// middle of a frame keeps waiting: the header promised more bytes.)
    Idle,
}

/// Read `buf.len()` bytes, retrying on read timeouts. Once a frame has
/// started the remaining bytes are owed, so a *briefly* slow sender is not
/// an error — but `stall` bounds how long the stream may sit idle
/// mid-frame before the read fails with [`ServeError::Stalled`] (the
/// slow-loris defense: one drip-feeding peer cannot pin a connection
/// handler forever). `None` waits patiently without bound.
///
/// The stall clock only advances across timed-out reads, so it needs the
/// stream to have a read timeout configured (every server connection
/// does); each successful read resets it — progress is what is owed, not
/// completion.
fn read_exact_stall_bounded(
    r: &mut impl Read,
    buf: &mut [u8],
    stall: Option<Duration>,
) -> Result<(), ServeError> {
    let mut filled = 0;
    let mut idle_since: Option<Instant> = None;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Err(ServeError::Io(std::io::ErrorKind::UnexpectedEof.into())),
            Ok(n) => {
                filled += n;
                idle_since = None;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if let Some(limit) = stall {
                    let since = *idle_since.get_or_insert_with(Instant::now);
                    let stalled = since.elapsed();
                    if stalled >= limit {
                        return Err(ServeError::Stalled {
                            stalled_ms: stalled.as_millis() as u64,
                            got: filled,
                            want: buf.len(),
                        });
                    }
                }
            }
            Err(e) => return Err(ServeError::Io(e)),
        }
    }
    Ok(())
}

/// Read one frame from `r`, distinguishing a clean EOF and an idle timeout
/// (both only *between* frames) from real failures. `max` caps the payload
/// length before any payload byte is read. Mid-frame the read waits
/// without bound; servers use [`read_frame_stall_bounded`] instead.
pub fn read_frame(r: &mut impl Read, max: u64) -> Result<FrameEvent, ServeError> {
    read_frame_stall_bounded(r, max, None)
}

/// [`read_frame`] with a mid-frame stall bound: once the first byte of a
/// frame arrives, any stretch of `stall` with no further progress fails
/// with [`ServeError::Stalled`]. Between frames the usual idle semantics
/// apply ([`FrameEvent::Idle`] on a quiet timeout tick).
pub fn read_frame_stall_bounded(
    r: &mut impl Read,
    max: u64,
    stall: Option<Duration>,
) -> Result<FrameEvent, ServeError> {
    // First byte decides between idle / EOF / frame-in-progress.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Ok(FrameEvent::Eof),
            Ok(1) => break,
            Ok(_) => unreachable!("read into a 1-byte buffer"),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Ok(FrameEvent::Idle)
            }
            Err(e) => return Err(ServeError::Io(e)),
        }
    }
    let mut header = [0u8; FRAME_HEADER];
    header[0] = first[0];
    read_exact_stall_bounded(r, &mut header[1..], stall)?;
    if header[..4] != FRAME_MAGIC {
        return Err(ServeError::BadMagic([
            header[0], header[1], header[2], header[3],
        ]));
    }
    if header[4] != PROTO_VERSION {
        return Err(ServeError::BadVersion(header[4]));
    }
    let len = u32::from_le_bytes(header[5..9].try_into().expect("4 bytes")) as u64;
    if len > max {
        return Err(ServeError::FrameTooLarge { len, max });
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_stall_bounded(r, &mut payload, stall)?;
    Ok(FrameEvent::Frame(payload))
}

// ---------------------------------------------------------------------------
// Machine descriptions on the wire.

/// The machine presets a client can request (the paper's Table 2 systems
/// plus the §7.3 hypotheticals) — the wire never ships raw latency tables,
/// so a request cannot describe a machine the reproduction never measured.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MachinePreset {
    /// [`MachineConfig::single_socket`].
    SingleSocket,
    /// [`MachineConfig::dual_socket`].
    DualSocket,
    /// [`MachineConfig::disaggregated`].
    Disaggregated,
    /// [`MachineConfig::try_many_socket`] with this socket count.
    ManySocket(u32),
}

/// A machine description as requested over the wire: a preset plus an
/// optional core-count override (smaller machines simulate faster — tests
/// and the load generator use 2 cores per socket).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MachineSpec {
    /// Which preset to start from.
    pub preset: MachinePreset,
    /// Override for cores per socket (`None` keeps the preset's 12).
    pub cores_per_socket: Option<u32>,
}

impl MachineSpec {
    /// The preset with no overrides.
    pub fn new(preset: MachinePreset) -> MachineSpec {
        MachineSpec {
            preset,
            cores_per_socket: None,
        }
    }

    /// Override the core count per socket.
    pub fn with_cores(mut self, cores: u32) -> MachineSpec {
        self.cores_per_socket = Some(cores);
        self
    }

    /// Materialize the [`MachineConfig`], rejecting impossible requests
    /// (zero cores, sharer-bitmask overflow) with a typed [`SimError`]
    /// instead of tripping an internal assertion.
    pub fn to_machine(&self) -> Result<MachineConfig, SimError> {
        use warden_coherence::CoherenceError;
        let bad = |msg: String| SimError::Config(CoherenceError::BadConfig(msg));
        let m = match self.preset {
            MachinePreset::SingleSocket => MachineConfig::single_socket(),
            MachinePreset::DualSocket => MachineConfig::dual_socket(),
            MachinePreset::Disaggregated => MachineConfig::disaggregated(),
            MachinePreset::ManySocket(n) => MachineConfig::try_many_socket(n as usize)?,
        };
        let m = match self.cores_per_socket {
            None => m,
            Some(0) => return Err(bad("cores per socket must be non-zero".into())),
            Some(c) => {
                let total = m.topo.num_sockets() as u64 * c as u64;
                if total > 64 {
                    return Err(bad(format!(
                        "{} sockets x {c} cores = {total} cores exceed the 64-wide \
                         sharer bitmask",
                        m.topo.num_sockets()
                    )));
                }
                m.with_cores(c as usize)
            }
        };
        m.validate()?;
        Ok(m)
    }

    fn encode_into(&self, enc: &mut Encoder) {
        match self.preset {
            MachinePreset::SingleSocket => enc.put_u8(0),
            MachinePreset::DualSocket => enc.put_u8(1),
            MachinePreset::Disaggregated => enc.put_u8(2),
            MachinePreset::ManySocket(n) => {
                enc.put_u8(3);
                enc.put_u32(n);
            }
        }
        match self.cores_per_socket {
            None => enc.put_bool(false),
            Some(c) => {
                enc.put_bool(true);
                enc.put_u32(c);
            }
        }
    }

    fn decode_from(dec: &mut Decoder<'_>) -> Result<MachineSpec, CodecError> {
        let preset = match dec.take_u8()? {
            0 => MachinePreset::SingleSocket,
            1 => MachinePreset::DualSocket,
            2 => MachinePreset::Disaggregated,
            3 => MachinePreset::ManySocket(dec.take_u32()?),
            t => {
                return Err(CodecError::BadTag {
                    what: "machine preset",
                    tag: t as u64,
                })
            }
        };
        let cores_per_socket = if dec.take_bool()? {
            Some(dec.take_u32()?)
        } else {
            None
        };
        Ok(MachineSpec {
            preset,
            cores_per_socket,
        })
    }
}

// ---------------------------------------------------------------------------
// Requests.

/// One simulation request: which benchmark trace to replay, on which
/// machine, under which protocol. The server resolves this to a cache key
/// of `(options fingerprint, trace digest, machine fingerprint, protocol)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimRequest {
    /// The PBBS benchmark whose trace to replay.
    pub bench: Bench,
    /// Input scale.
    pub scale: Scale,
    /// The machine description.
    pub machine: MachineSpec,
    /// The coherence protocol.
    pub protocol: ProtocolId,
    /// Run the coherence invariant checker during the replay.
    pub check: bool,
}

/// Every request a client can send.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Replay a benchmark; answered with [`Response::Outcome`] (or a typed
    /// rejection: [`Response::Busy`], [`Response::Draining`], ...).
    Simulate(SimRequest),
    /// Fetch the server's metrics snapshot ([`Response::Metrics`]).
    Metrics,
}

fn scale_tag(s: Scale) -> u8 {
    match s {
        Scale::Tiny => 0,
        Scale::Paper => 1,
    }
}

fn scale_from_tag(tag: u8) -> Result<Scale, CodecError> {
    match tag {
        0 => Ok(Scale::Tiny),
        1 => Ok(Scale::Paper),
        t => Err(CodecError::BadTag {
            what: "scale",
            tag: t as u64,
        }),
    }
}

/// The canonical on-wire tag for a protocol (shared with the cache key) —
/// the registry's own frozen tag, so every registered protocol is
/// addressable and unknown tags are rejected with a typed error.
pub fn protocol_tag(p: ProtocolId) -> u8 {
    p.tag()
}

fn protocol_from_tag(tag: u8) -> Result<ProtocolId, CodecError> {
    ProtocolId::from_tag(tag)
}

impl SimRequest {
    fn encode_into(&self, enc: &mut Encoder) {
        enc.put_str(self.bench.name());
        enc.put_u8(scale_tag(self.scale));
        self.machine.encode_into(enc);
        enc.put_u8(protocol_tag(self.protocol));
        enc.put_bool(self.check);
    }

    fn decode_from(dec: &mut Decoder<'_>) -> Result<SimRequest, CodecError> {
        let name = dec.take_str()?;
        let bench = Bench::by_name(&name).ok_or_else(|| CodecError::Invalid {
            what: "benchmark name",
            detail: format!("unknown benchmark {name:?}"),
        })?;
        let scale = scale_from_tag(dec.take_u8()?)?;
        let machine = MachineSpec::decode_from(dec)?;
        let protocol = protocol_from_tag(dec.take_u8()?)?;
        let check = dec.take_bool()?;
        Ok(SimRequest {
            bench,
            scale,
            machine,
            protocol,
            check,
        })
    }
}

impl Request {
    /// Serialize the request into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        match self {
            Request::Ping => enc.put_u8(0),
            Request::Simulate(req) => {
                enc.put_u8(1);
                req.encode_into(&mut enc);
            }
            Request::Metrics => enc.put_u8(2),
        }
        enc.into_bytes()
    }

    /// Decode a frame payload; every malformed or truncated input is a
    /// typed [`CodecError`].
    pub fn decode(bytes: &[u8]) -> Result<Request, CodecError> {
        let mut dec = Decoder::new(bytes);
        let out = match dec.take_u8()? {
            0 => Request::Ping,
            1 => Request::Simulate(SimRequest::decode_from(&mut dec)?),
            2 => Request::Metrics,
            t => {
                return Err(CodecError::BadTag {
                    what: "request",
                    tag: t as u64,
                })
            }
        };
        dec.finish()?;
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Responses.

/// The digest-bearing summary of one simulation, small enough to ship per
/// request (the full [`warden_sim::SimOutcome`] carries the final memory
/// image; clients that need bit-level conformance compare
/// [`Self::outcome_digest`], which covers it).
#[derive(Clone, Debug, PartialEq)]
pub struct OutcomeSummary {
    /// ProtocolId the replay ran.
    pub protocol: ProtocolId,
    /// Machine name (from the resolved [`MachineConfig`]).
    pub machine: String,
    /// Every measurement, via the existing statistics codec.
    pub stats: SimStats,
    /// Digest of the final memory image.
    pub memory_image_digest: u64,
    /// Peak simultaneous WARD regions.
    pub region_peak: u64,
    /// FNV-1a digest over the *entire* serialized outcome (statistics,
    /// energy, final memory image, violations) — byte-for-byte conformance
    /// with a direct `simulate()` call collapses to comparing this value.
    pub outcome_digest: u64,
}

/// Where a served [`Response::Outcome`] came from — the provenance the
/// wire carries so clients (and the load generator's warm-vs-cold latency
/// split) can tell a cache hit from a recompute without guessing from
/// latency.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ServedFrom {
    /// The in-memory result cache.
    Memory,
    /// Coalesced onto a concurrent identical computation (single-flight).
    Coalesced,
    /// The crash-safe disk tier (a prior run — possibly a prior process —
    /// left the finished result behind).
    Disk,
    /// Simulated, but resumed from a persisted checkpoint frame instead of
    /// cycle 0.
    Resumed,
    /// Simulated from cycle 0.
    Fresh,
}

impl ServedFrom {
    /// Every variant, in wire-tag order.
    pub const ALL: [ServedFrom; 5] = [
        ServedFrom::Memory,
        ServedFrom::Coalesced,
        ServedFrom::Disk,
        ServedFrom::Resumed,
        ServedFrom::Fresh,
    ];

    /// Whether a cache (memory or disk) served the result without running
    /// the simulation to completion — what version 1's `cache_hit` meant.
    pub fn cache_hit(self) -> bool {
        matches!(
            self,
            ServedFrom::Memory | ServedFrom::Coalesced | ServedFrom::Disk
        )
    }

    /// The stable snake_case label used in metrics JSON.
    pub fn label(self) -> &'static str {
        match self {
            ServedFrom::Memory => "memory_hit",
            ServedFrom::Coalesced => "coalesced",
            ServedFrom::Disk => "disk_hit",
            ServedFrom::Resumed => "prefix_resume",
            ServedFrom::Fresh => "full_sim",
        }
    }

    fn tag(self) -> u8 {
        match self {
            ServedFrom::Memory => 0,
            ServedFrom::Coalesced => 1,
            ServedFrom::Disk => 2,
            ServedFrom::Resumed => 3,
            ServedFrom::Fresh => 4,
        }
    }

    fn from_tag(tag: u8) -> Result<ServedFrom, CodecError> {
        ServedFrom::ALL
            .get(tag as usize)
            .copied()
            .ok_or(CodecError::BadTag {
                what: "served-from",
                tag: tag as u64,
            })
    }
}

/// Why the server rejected or failed a request (carried by
/// [`Response::Error`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request itself is unserviceable (bad machine description, ...).
    BadRequest,
    /// The server failed internally (simulation error or panic).
    Internal,
}

/// Every response the server can send.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// A completed simulation, tagged with where it was served from
    /// (cache tier, coalesced flight, checkpoint resume, or a full
    /// replay).
    Outcome {
        /// The digest-bearing summary (boxed: it dwarfs the other arms).
        summary: Box<OutcomeSummary>,
        /// The result's provenance.
        served: ServedFrom,
    },
    /// Backpressure: the bounded request queue is full. Retry later.
    Busy {
        /// Queue occupancy at rejection time.
        queue_len: u32,
        /// The configured queue capacity.
        queue_cap: u32,
        /// The server's advice on how long to back off before retrying,
        /// in milliseconds. Well-behaved clients (the resilient client,
        /// the load generator) honor it as their backoff floor.
        retry_after_ms: u32,
    },
    /// The request frame exceeded the server's size cap.
    TooLarge {
        /// The declared frame length.
        len: u64,
        /// The cap it exceeded.
        max: u64,
    },
    /// The server is draining for shutdown and accepts no new work.
    Draining,
    /// A typed failure (see [`ErrorKind`]).
    Error {
        /// Whether the client or the server is at fault.
        kind: ErrorKind,
        /// Human-readable detail.
        msg: String,
    },
    /// Answer to [`Request::Metrics`]: the server's counters, gauges
    /// (flattened) and latency histograms.
    Metrics(MetricsRegistry),
    /// The request's deadline (queue wait + simulation) expired before a
    /// result was ready. The computation was cooperatively cancelled; the
    /// worker is already free. Retrying is safe — requests are
    /// content-addressed, so a retry that finds the result cached (another
    /// client finished the same work) is served instantly.
    DeadlineExceeded {
        /// The deadline the request carried.
        deadline_ms: u64,
        /// Wall-clock time the request had been in the server when the
        /// deadline fired.
        elapsed_ms: u64,
    },
}

impl OutcomeSummary {
    /// The exact number of payload bytes this summary occupies on the
    /// wire — the byte cost a cache hit actually ships, and therefore the
    /// weight the bounded result cache charges against its budget.
    pub fn wire_size(&self) -> u64 {
        let mut enc = Encoder::new();
        self.encode_into(&mut enc);
        enc.bytes().len() as u64
    }

    pub(crate) fn encode_into(&self, enc: &mut Encoder) {
        enc.put_u8(protocol_tag(self.protocol));
        enc.put_str(&self.machine);
        self.stats.encode_into(enc);
        enc.put_u64(self.memory_image_digest);
        enc.put_u64(self.region_peak);
        enc.put_u64(self.outcome_digest);
    }

    pub(crate) fn decode_from(dec: &mut Decoder<'_>) -> Result<OutcomeSummary, CodecError> {
        let protocol = protocol_from_tag(dec.take_u8()?)?;
        let machine = dec.take_str()?;
        let stats = SimStats::decode_from(dec)?;
        let memory_image_digest = dec.take_u64()?;
        let region_peak = dec.take_u64()?;
        let outcome_digest = dec.take_u64()?;
        Ok(OutcomeSummary {
            protocol,
            machine,
            stats,
            memory_image_digest,
            region_peak,
            outcome_digest,
        })
    }
}

impl Response {
    /// Serialize the response into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        match self {
            Response::Pong => enc.put_u8(0),
            Response::Outcome { summary, served } => {
                enc.put_u8(1);
                summary.encode_into(&mut enc);
                enc.put_u8(served.tag());
            }
            Response::Busy {
                queue_len,
                queue_cap,
                retry_after_ms,
            } => {
                enc.put_u8(2);
                enc.put_u32(*queue_len);
                enc.put_u32(*queue_cap);
                enc.put_u32(*retry_after_ms);
            }
            Response::TooLarge { len, max } => {
                enc.put_u8(3);
                enc.put_u64(*len);
                enc.put_u64(*max);
            }
            Response::Draining => enc.put_u8(4),
            Response::Error { kind, msg } => {
                enc.put_u8(5);
                enc.put_u8(match kind {
                    ErrorKind::BadRequest => 0,
                    ErrorKind::Internal => 1,
                });
                enc.put_str(msg);
            }
            Response::Metrics(reg) => {
                enc.put_u8(6);
                reg.encode_into(&mut enc);
            }
            Response::DeadlineExceeded {
                deadline_ms,
                elapsed_ms,
            } => {
                enc.put_u8(7);
                enc.put_u64(*deadline_ms);
                enc.put_u64(*elapsed_ms);
            }
        }
        enc.into_bytes()
    }

    /// Decode a frame payload; every malformed or truncated input is a
    /// typed [`CodecError`].
    pub fn decode(bytes: &[u8]) -> Result<Response, CodecError> {
        let mut dec = Decoder::new(bytes);
        let out = match dec.take_u8()? {
            0 => Response::Pong,
            1 => {
                let summary = Box::new(OutcomeSummary::decode_from(&mut dec)?);
                let served = ServedFrom::from_tag(dec.take_u8()?)?;
                Response::Outcome { summary, served }
            }
            2 => Response::Busy {
                queue_len: dec.take_u32()?,
                queue_cap: dec.take_u32()?,
                retry_after_ms: dec.take_u32()?,
            },
            3 => Response::TooLarge {
                len: dec.take_u64()?,
                max: dec.take_u64()?,
            },
            4 => Response::Draining,
            5 => {
                let kind = match dec.take_u8()? {
                    0 => ErrorKind::BadRequest,
                    1 => ErrorKind::Internal,
                    t => {
                        return Err(CodecError::BadTag {
                            what: "error kind",
                            tag: t as u64,
                        })
                    }
                };
                Response::Error {
                    kind,
                    msg: dec.take_str()?,
                }
            }
            6 => Response::Metrics(MetricsRegistry::decode_from(&mut dec)?),
            7 => Response::DeadlineExceeded {
                deadline_ms: dec.take_u64()?,
                elapsed_ms: dec.take_u64()?,
            },
            t => {
                return Err(CodecError::BadTag {
                    what: "response",
                    tag: t as u64,
                })
            }
        };
        dec.finish()?;
        Ok(out)
    }
}

/// The conformance digest of a complete outcome: FNV-1a over the outcome's
/// full serialized record (the same bytes the campaign runner persists).
/// Two outcomes digest equal iff statistics, energy, final memory image,
/// region peak and violations are all identical — the oracle the load
/// generator holds every served response to.
pub fn outcome_digest(out: &warden_sim::SimOutcome) -> u64 {
    warden_mem::codec::fnv1a64(&warden_sim::checkpoint::encode_outcome(out))
}

/// Build the [`OutcomeSummary`] for a finished replay.
pub fn summarize_outcome(out: &warden_sim::SimOutcome) -> OutcomeSummary {
    OutcomeSummary {
        protocol: out.protocol,
        machine: out.machine.clone(),
        stats: out.stats.clone(),
        memory_image_digest: out.memory_image_digest,
        region_peak: out.region_peak as u64,
        outcome_digest: outcome_digest(out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip_and_rejections() {
        let payload = Request::Ping.encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload, DEFAULT_MAX_FRAME).unwrap();
        let mut rd = &wire[..];
        match read_frame(&mut rd, DEFAULT_MAX_FRAME).unwrap() {
            FrameEvent::Frame(p) => assert_eq!(p, payload),
            other => panic!("expected a frame, got {other:?}"),
        }
        match read_frame(&mut rd, DEFAULT_MAX_FRAME).unwrap() {
            FrameEvent::Eof => {}
            other => panic!("expected EOF, got {other:?}"),
        }

        // Bad magic.
        let mut bad = wire.clone();
        bad[0] = b'X';
        assert!(matches!(
            read_frame(&mut &bad[..], DEFAULT_MAX_FRAME),
            Err(ServeError::BadMagic(_))
        ));
        // Bad version.
        let mut bad = wire.clone();
        bad[4] = 99;
        assert!(matches!(
            read_frame(&mut &bad[..], DEFAULT_MAX_FRAME),
            Err(ServeError::BadVersion(99))
        ));
        // Oversized length is rejected before the payload is read.
        assert!(matches!(
            read_frame(&mut &wire[..], 0),
            Err(ServeError::FrameTooLarge { .. })
        ));
        // A torn frame (payload cut short) is an UnexpectedEof I/O error.
        let torn = &wire[..wire.len() - 1];
        assert!(matches!(
            read_frame(&mut &torn[..], DEFAULT_MAX_FRAME),
            Err(ServeError::Io(_))
        ));
    }

    #[test]
    fn machine_spec_resolves_presets_and_rejects_impossible_machines() {
        let m = MachineSpec::new(MachinePreset::DualSocket)
            .with_cores(2)
            .to_machine()
            .unwrap();
        assert_eq!(m.num_cores(), 4);
        assert_eq!(
            m.fingerprint(),
            MachineConfig::dual_socket().with_cores(2).fingerprint()
        );
        assert!(MachineSpec::new(MachinePreset::ManySocket(5))
            .to_machine()
            .is_ok());
        for spec in [
            MachineSpec::new(MachinePreset::ManySocket(6)),
            MachineSpec::new(MachinePreset::ManySocket(0)),
            MachineSpec::new(MachinePreset::SingleSocket).with_cores(0),
            MachineSpec::new(MachinePreset::DualSocket).with_cores(33),
        ] {
            assert!(
                matches!(spec.to_machine(), Err(SimError::Config(_))),
                "{spec:?} must be rejected"
            );
        }
    }

    #[test]
    fn unknown_benchmark_name_is_typed() {
        let req = Request::Simulate(SimRequest {
            bench: Bench::Fib,
            scale: Scale::Tiny,
            machine: MachineSpec::new(MachinePreset::SingleSocket),
            protocol: ProtocolId::Warden,
            check: false,
        });
        let mut bytes = req.encode();
        // Corrupt the benchmark name ("fib" → "fxb").
        let pos = bytes
            .windows(3)
            .position(|w| w == b"fib")
            .expect("name on the wire");
        bytes[pos + 1] = b'x';
        assert!(matches!(
            Request::decode(&bytes),
            Err(CodecError::Invalid { .. })
        ));
    }

    #[test]
    fn request_codec_covers_every_registered_protocol() {
        for &protocol in &ProtocolId::ALL {
            let req = Request::Simulate(SimRequest {
                bench: Bench::Fib,
                scale: Scale::Tiny,
                machine: MachineSpec::new(MachinePreset::SingleSocket),
                protocol,
                check: true,
            });
            match Request::decode(&req.encode()).expect("round trip") {
                Request::Simulate(r) => assert_eq!(r.protocol, protocol),
                other => panic!("wrong request decoded: {other:?}"),
            }
        }
    }

    #[test]
    fn unknown_protocol_tag_is_typed() {
        let build = |protocol| {
            Request::Simulate(SimRequest {
                bench: Bench::Fib,
                scale: Scale::Tiny,
                machine: MachineSpec::new(MachinePreset::SingleSocket),
                protocol,
                check: false,
            })
            .encode()
        };
        // Two encodings differing only in the protocol field locate the
        // byte to forge without hard-coding the wire layout here.
        let wire = build(ProtocolId::Warden);
        let alt = build(ProtocolId::Mesi);
        assert_eq!(wire.len(), alt.len());
        let pos = (0..wire.len())
            .find(|&i| wire[i] != alt[i])
            .expect("protocol byte on the wire");
        for bad in [ProtocolId::ALL.len() as u8, 0xFF] {
            let mut forged = wire.clone();
            forged[pos] = bad;
            match Request::decode(&forged) {
                Err(CodecError::BadTag { what, tag }) => {
                    assert_eq!(what, "protocol");
                    assert_eq!(tag, u64::from(bad));
                }
                other => panic!("tag {bad}: expected a typed BadTag, got {other:?}"),
            }
        }
    }

    #[test]
    fn served_from_tags_round_trip_and_reject_unknowns() {
        for s in ServedFrom::ALL {
            assert_eq!(ServedFrom::from_tag(s.tag()).unwrap(), s);
        }
        assert!(ServedFrom::from_tag(5).is_err());
        assert!(ServedFrom::Memory.cache_hit());
        assert!(ServedFrom::Coalesced.cache_hit());
        assert!(ServedFrom::Disk.cache_hit());
        assert!(!ServedFrom::Resumed.cache_hit());
        assert!(!ServedFrom::Fresh.cache_hit());
        let labels: Vec<&str> = ServedFrom::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            [
                "memory_hit",
                "coalesced",
                "disk_hit",
                "prefix_resume",
                "full_sim"
            ]
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Request::Ping.encode();
        bytes.push(0);
        assert!(Request::decode(&bytes).is_err());
        let mut bytes = Response::Pong.encode();
        bytes.push(0);
        assert!(Response::decode(&bytes).is_err());
    }
}
