//! The storage abstraction under the disk cache tier, with seeded fault
//! injection.
//!
//! [`DiskTier`](crate::disk::DiskTier) never touches the filesystem
//! directly: every read, atomic write, rename and directory listing goes
//! through the [`Storage`] trait. Production uses [`RealStorage`], whose
//! atomic write is the checkpoint module's temp-file + `fsync` + rename +
//! parent-directory-`fsync` discipline. Chaos drills swap in
//! [`FaultyStorage`], which wraps a real storage and injects the failure
//! modes a disk actually exhibits — torn writes that "succeed", `ENOSPC`,
//! bit rot on read, and crashes on either side of the rename — from a
//! seeded deterministic stream (the same splitmix64 scheme as the
//! wire-level `ChaosProxy` in `warden-bench`), so a failing run replays
//! exactly.
//!
//! The injected faults are chosen to exercise the tier's whole recovery
//! surface:
//!
//! - a **torn write** leaves a non-empty strict prefix at the destination
//!   and reports success — only the checksummed entry frame can catch it,
//!   on the next read (quarantine, recompute). Payloads shorter than two
//!   bytes have no such prefix, so they are written cleanly and never
//!   counted as torn;
//! - **`ENOSPC`** surfaces as the real `os error 28`, so the tier's
//!   degradation path is tested against exactly what a full disk returns;
//! - **corrupt-on-read** flips one seeded byte in an otherwise intact
//!   file (quarantine, recompute);
//! - a **crash before the rename** leaves a complete temporary file and an
//!   untouched destination (fsck removes the orphan; the old entry still
//!   serves);
//! - a **crash after the rename** reports failure although the new bytes
//!   are durable — the caller must treat the entry as lost, and a later
//!   fsck legitimately rediscovers it.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use warden_sim::checkpoint::{write_atomic, CheckpointError};

/// Every filesystem operation the disk tier performs. Implementations must
/// be safe to call from multiple worker threads.
pub trait Storage: Send + Sync {
    /// Read a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Durably replace `path` with `bytes`: after a crash at any point the
    /// path holds either its old contents or all of `bytes` (the
    /// checkpoint module's temp-file + `fsync` + rename discipline).
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Remove a file (missing files are not an error for callers that
    /// tolerate them; they get the raw `NotFound`).
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// Rename a file within the tier's directory.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// List the entries of a directory.
    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
    /// Create a directory and its parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
}

/// The production [`Storage`]: plain `std::fs`, with atomic writes
/// delegated to [`warden_sim::checkpoint::write_atomic`].
#[derive(Clone, Copy, Debug, Default)]
pub struct RealStorage;

fn unwrap_ckpt_io(e: CheckpointError) -> io::Error {
    match e {
        CheckpointError::Io { source, .. } => source,
        other => io::Error::other(other.to_string()),
    }
}

impl Storage for RealStorage {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        write_atomic(path, bytes).map_err(unwrap_ckpt_io)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            out.push(entry?.path());
        }
        Ok(out)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }
}

/// Per-operation fault probabilities for [`FaultyStorage`], drawn from a
/// seeded deterministic stream. At most one fault fires per operation; the
/// probabilities are cumulative and should sum to at most 1 per operation
/// class (writes: torn + enospc + the two crashes; reads: corrupt).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StorageFaultPlan {
    /// Seed for the fault stream; the same seed replays the same faults.
    pub seed: u64,
    /// A write leaves a non-empty strict prefix at the destination and
    /// reports success. Payloads shorter than two bytes have no such
    /// prefix; they are written cleanly and not counted.
    pub torn_write_prob: f64,
    /// A write fails with the real `ENOSPC` (os error 28).
    pub enospc_prob: f64,
    /// A read returns the file with one seeded byte flipped; empty files
    /// pass through untouched and are not counted.
    pub corrupt_read_prob: f64,
    /// A write crashes before the rename: a complete temporary file is
    /// left behind, the destination is untouched, and the write fails.
    pub crash_before_rename_prob: f64,
    /// A write crashes after the rename: the new bytes are durable but the
    /// write still reports failure.
    pub crash_after_rename_prob: f64,
}

impl Default for StorageFaultPlan {
    fn default() -> StorageFaultPlan {
        StorageFaultPlan {
            seed: 0xD15C_FA17,
            torn_write_prob: 0.10,
            enospc_prob: 0.10,
            corrupt_read_prob: 0.10,
            crash_before_rename_prob: 0.05,
            crash_after_rename_prob: 0.05,
        }
    }
}

impl StorageFaultPlan {
    /// The default mix under a caller-chosen seed.
    pub fn seeded(seed: u64) -> StorageFaultPlan {
        StorageFaultPlan {
            seed,
            ..StorageFaultPlan::default()
        }
    }

    /// Reject nonsensical probabilities.
    pub fn validate(&self) -> Result<(), String> {
        let probs = [
            ("torn_write_prob", self.torn_write_prob),
            ("enospc_prob", self.enospc_prob),
            ("corrupt_read_prob", self.corrupt_read_prob),
            ("crash_before_rename_prob", self.crash_before_rename_prob),
            ("crash_after_rename_prob", self.crash_after_rename_prob),
        ];
        for (name, p) in probs {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be within [0, 1], got {p}"));
            }
        }
        let write_sum = self.torn_write_prob
            + self.enospc_prob
            + self.crash_before_rename_prob
            + self.crash_after_rename_prob;
        if write_sum > 1.0 {
            return Err(format!(
                "write fault probabilities sum to {write_sum}, which exceeds 1"
            ));
        }
        Ok(())
    }
}

/// Counts of the faults a [`FaultyStorage`] has actually injected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StorageFaultStats {
    /// Writes that left a prefix and lied about success.
    pub torn_writes: u64,
    /// Writes failed with `ENOSPC`.
    pub enospc: u64,
    /// Reads returned with a flipped byte.
    pub corrupt_reads: u64,
    /// Writes crashed before the rename.
    pub crash_before_rename: u64,
    /// Writes crashed after the rename.
    pub crash_after_rename: u64,
}

impl StorageFaultStats {
    /// Total faults injected.
    pub fn injected(&self) -> u64 {
        self.torn_writes
            + self.enospc
            + self.corrupt_reads
            + self.crash_before_rename
            + self.crash_after_rename
    }
}

/// A [`Storage`] that wraps another and injects seeded faults. Metadata
/// operations (`remove`, `rename`, `list`, `create_dir_all`) pass through
/// untouched — the tier's recovery logic must survive data-path faults,
/// not a byzantine filesystem.
pub struct FaultyStorage {
    inner: Box<dyn Storage>,
    plan: StorageFaultPlan,
    state: Mutex<u64>,
    torn_writes: AtomicU64,
    enospc: AtomicU64,
    corrupt_reads: AtomicU64,
    crash_before_rename: AtomicU64,
    crash_after_rename: AtomicU64,
}

/// The raw `ENOSPC` errno, so injected disk-full failures are
/// indistinguishable from real ones.
pub const ENOSPC_OS_ERROR: i32 = 28;

/// Whether an I/O error is a disk-full condition (real or injected).
pub fn is_enospc(e: &io::Error) -> bool {
    e.raw_os_error() == Some(ENOSPC_OS_ERROR) || e.kind() == io::ErrorKind::StorageFull
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultyStorage {
    /// Wrap `inner`, injecting faults per `plan`.
    pub fn new(inner: impl Storage + 'static, plan: StorageFaultPlan) -> FaultyStorage {
        FaultyStorage {
            inner: Box::new(inner),
            plan,
            state: Mutex::new(plan.seed),
            torn_writes: AtomicU64::new(0),
            enospc: AtomicU64::new(0),
            corrupt_reads: AtomicU64::new(0),
            crash_before_rename: AtomicU64::new(0),
            crash_after_rename: AtomicU64::new(0),
        }
    }

    /// The plan this storage injects from.
    pub fn plan(&self) -> StorageFaultPlan {
        self.plan
    }

    /// What has been injected so far.
    pub fn stats(&self) -> StorageFaultStats {
        StorageFaultStats {
            torn_writes: self.torn_writes.load(Ordering::Relaxed),
            enospc: self.enospc.load(Ordering::Relaxed),
            corrupt_reads: self.corrupt_reads.load(Ordering::Relaxed),
            crash_before_rename: self.crash_before_rename.load(Ordering::Relaxed),
            crash_after_rename: self.crash_after_rename.load(Ordering::Relaxed),
        }
    }

    fn draw(&self) -> u64 {
        let mut state = self.state.lock().expect("fault stream lock");
        splitmix64(&mut state)
    }

    /// A uniform draw in `[0, 1)`.
    fn unit(&self) -> f64 {
        (self.draw() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Storage for FaultyStorage {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut bytes = self.inner.read(path)?;
        if !bytes.is_empty() && self.unit() < self.plan.corrupt_read_prob {
            let idx = (self.draw() % bytes.len() as u64) as usize;
            bytes[idx] ^= 0xA5;
            self.corrupt_reads.fetch_add(1, Ordering::Relaxed);
        }
        Ok(bytes)
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let roll = self.unit();
        let p = &self.plan;
        let mut bound = p.torn_write_prob;
        if roll < bound {
            // A torn write: a strict prefix lands at the destination and
            // the write "succeeds". Only the entry frame's checksum can
            // catch this, on the next read. A payload needs at least two
            // bytes to have a non-empty strict prefix — shorter ones fall
            // through to a clean write, because "tearing" them would write
            // the complete payload while the counter claimed a fault.
            if bytes.len() >= 2 {
                let cut = 1 + (self.draw() % (bytes.len() as u64 - 1)) as usize;
                self.torn_writes.fetch_add(1, Ordering::Relaxed);
                return self.inner.write_atomic(path, &bytes[..cut]);
            }
            return self.inner.write_atomic(path, bytes);
        }
        bound += p.enospc_prob;
        if roll < bound {
            self.enospc.fetch_add(1, Ordering::Relaxed);
            return Err(io::Error::from_raw_os_error(ENOSPC_OS_ERROR));
        }
        bound += p.crash_before_rename_prob;
        if roll < bound {
            // The temp file is complete but the rename never happened: the
            // destination is untouched and an orphan `*.tmp` is left for
            // fsck to sweep.
            let mut tmp_os = path.as_os_str().to_owned();
            tmp_os.push(".tmp");
            let _ = self.inner.write_atomic(&PathBuf::from(tmp_os), bytes);
            self.crash_before_rename.fetch_add(1, Ordering::Relaxed);
            return Err(io::Error::other("injected crash before rename"));
        }
        bound += p.crash_after_rename_prob;
        if roll < bound {
            // The new bytes are fully durable, but the writer dies before
            // it can report success.
            self.inner.write_atomic(path, bytes)?;
            self.crash_after_rename.fetch_add(1, Ordering::Relaxed);
            return Err(io::Error::other("injected crash after rename"));
        }
        self.inner.write_atomic(path, bytes)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.inner.remove(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.inner.rename(from, to)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.list(dir)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.inner.create_dir_all(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("warden-storage-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn real_storage_round_trips_atomically() {
        let dir = scratch("real");
        let s = RealStorage;
        let path = dir.join("a.bin");
        s.write_atomic(&path, b"hello").unwrap();
        assert_eq!(s.read(&path).unwrap(), b"hello");
        s.write_atomic(&path, b"replaced").unwrap();
        assert_eq!(s.read(&path).unwrap(), b"replaced");
        assert!(s.list(&dir).unwrap().contains(&path));
        s.remove(&path).unwrap();
        assert!(s.read(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_writes_leave_a_strict_prefix_and_report_success() {
        let dir = scratch("torn");
        let plan = StorageFaultPlan {
            seed: 7,
            torn_write_prob: 1.0,
            enospc_prob: 0.0,
            corrupt_read_prob: 0.0,
            crash_before_rename_prob: 0.0,
            crash_after_rename_prob: 0.0,
        };
        let s = FaultyStorage::new(RealStorage, plan);
        let path = dir.join("t.bin");
        let payload = vec![0xEEu8; 64];
        s.write_atomic(&path, &payload)
            .expect("torn write 'succeeds'");
        let got = std::fs::read(&path).unwrap();
        assert!(got.len() < payload.len() && !got.is_empty());
        assert_eq!(got, payload[..got.len()]);
        assert_eq!(s.stats().torn_writes, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tiny_payloads_are_never_falsely_torn() {
        // Regression: a 1-byte payload used to "tear" into `cut = 1`,
        // writing the complete payload while still incrementing
        // `torn_writes` — a fault counter lying about a fault that never
        // happened. Short payloads must now fall through to a clean write.
        let dir = scratch("tiny");
        let plan = StorageFaultPlan {
            seed: 9,
            torn_write_prob: 1.0,
            enospc_prob: 0.0,
            corrupt_read_prob: 0.0,
            crash_before_rename_prob: 0.0,
            crash_after_rename_prob: 0.0,
        };
        let s = FaultyStorage::new(RealStorage, plan);
        for i in 0..16 {
            let path = dir.join(format!("one-{i}.bin"));
            s.write_atomic(&path, &[0xAB]).expect("clean write");
            assert_eq!(std::fs::read(&path).unwrap(), vec![0xAB], "payload intact");
        }
        s.write_atomic(&dir.join("empty.bin"), b"")
            .expect("clean write");
        assert_eq!(std::fs::read(dir.join("empty.bin")).unwrap(), b"");
        assert_eq!(
            s.stats().torn_writes,
            0,
            "no torn write actually happened, so none may be counted"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_counted_tear_leaves_a_genuinely_truncated_file() {
        // The complementary invariant: whenever `torn_writes` does tick,
        // the file on disk really is a non-empty strict prefix.
        let dir = scratch("tear-audit");
        let plan = StorageFaultPlan {
            seed: 0xBEEF,
            torn_write_prob: 1.0,
            enospc_prob: 0.0,
            corrupt_read_prob: 0.0,
            crash_before_rename_prob: 0.0,
            crash_after_rename_prob: 0.0,
        };
        let s = FaultyStorage::new(RealStorage, plan);
        let mut counted = 0u64;
        for size in 1..=32usize {
            let path = dir.join(format!("p{size}.bin"));
            let payload: Vec<u8> = (0..size as u8).collect();
            s.write_atomic(&path, &payload)
                .expect("write reports success");
            let before = counted;
            counted = s.stats().torn_writes;
            let got = std::fs::read(&path).unwrap();
            if counted > before {
                assert!(
                    !got.is_empty() && got.len() < payload.len(),
                    "size {size}: counted tear must truncate (got {} of {} bytes)",
                    got.len(),
                    payload.len()
                );
                assert_eq!(got, payload[..got.len()], "prefix must match");
            } else {
                assert_eq!(got, payload, "uncounted write must be complete");
            }
        }
        assert_eq!(
            s.stats().torn_writes,
            31,
            "every payload of ≥2 bytes tears under probability 1, 1-byte never"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_is_the_real_errno() {
        let dir = scratch("enospc");
        let s = FaultyStorage::new(
            RealStorage,
            StorageFaultPlan {
                seed: 7,
                torn_write_prob: 0.0,
                enospc_prob: 1.0,
                corrupt_read_prob: 0.0,
                crash_before_rename_prob: 0.0,
                crash_after_rename_prob: 0.0,
            },
        );
        let err = s.write_atomic(&dir.join("x.bin"), b"abc").unwrap_err();
        assert!(is_enospc(&err), "injected failure must look like ENOSPC");
        assert_eq!(s.stats().enospc, 1);
        assert!(!dir.join("x.bin").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_faults_respect_rename_atomicity() {
        let dir = scratch("crash");
        let before = FaultyStorage::new(
            RealStorage,
            StorageFaultPlan {
                seed: 7,
                torn_write_prob: 0.0,
                enospc_prob: 0.0,
                corrupt_read_prob: 0.0,
                crash_before_rename_prob: 1.0,
                crash_after_rename_prob: 0.0,
            },
        );
        let path = dir.join("c.bin");
        std::fs::write(&path, b"old").unwrap();
        assert!(before.write_atomic(&path, b"new-bytes").is_err());
        assert_eq!(std::fs::read(&path).unwrap(), b"old", "dest untouched");
        assert!(dir.join("c.bin.tmp").exists(), "orphan tmp left behind");

        let after = FaultyStorage::new(
            RealStorage,
            StorageFaultPlan {
                seed: 7,
                torn_write_prob: 0.0,
                enospc_prob: 0.0,
                corrupt_read_prob: 0.0,
                crash_before_rename_prob: 0.0,
                crash_after_rename_prob: 1.0,
            },
        );
        assert!(after.write_atomic(&path, b"new-bytes").is_err());
        assert_eq!(
            std::fs::read(&path).unwrap(),
            b"new-bytes",
            "bytes durable despite the reported failure"
        );
        assert_eq!(before.stats().crash_before_rename, 1);
        assert_eq!(after.stats().crash_after_rename, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_reads_flip_exactly_one_byte_deterministically() {
        let dir = scratch("corrupt");
        let s = FaultyStorage::new(
            RealStorage,
            StorageFaultPlan {
                seed: 42,
                torn_write_prob: 0.0,
                enospc_prob: 0.0,
                corrupt_read_prob: 1.0,
                crash_before_rename_prob: 0.0,
                crash_after_rename_prob: 0.0,
            },
        );
        let path = dir.join("r.bin");
        let payload = vec![0u8; 32];
        std::fs::write(&path, &payload).unwrap();
        let got = s.read(&path).unwrap();
        let diffs: Vec<usize> = (0..32).filter(|&i| got[i] != payload[i]).collect();
        assert_eq!(diffs.len(), 1, "exactly one byte flipped");
        assert_eq!(s.stats().corrupt_reads, 1);

        // Same seed, same flip.
        let s2 = FaultyStorage::new(RealStorage, StorageFaultPlan::seeded(42));
        let _ = s2;
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn plans_validate() {
        assert!(StorageFaultPlan::default().validate().is_ok());
        assert!(StorageFaultPlan {
            torn_write_prob: 1.5,
            ..StorageFaultPlan::default()
        }
        .validate()
        .is_err());
        assert!(StorageFaultPlan {
            torn_write_prob: 0.5,
            enospc_prob: 0.5,
            crash_before_rename_prob: 0.5,
            ..StorageFaultPlan::default()
        }
        .validate()
        .is_err());
    }
}
