//! `warden-serve` — a concurrent simulation service for the WARDen
//! reproduction.
//!
//! The simulator's results are pure functions of `(trace, machine,
//! protocol, options)`, which makes them perfect cache fodder: this crate
//! wraps [`warden_sim::simulate_with_options`] in a multi-threaded server
//! speaking a length-prefixed binary protocol (built on the workspace's
//! hand-rolled [`warden_mem::codec`]) over TCP and Unix sockets, with
//!
//! - a **content-addressed result cache** keyed by `(options fingerprint,
//!   trace digest, machine fingerprint, protocol)` with **single-flight**
//!   semantics — N concurrent identical requests cost one simulation
//!   ([`cache::SingleFlight`]);
//! - a **bounded request queue** with typed backpressure
//!   ([`proto::Response::Busy`] carrying a retry-after hint,
//!   [`proto::Response::TooLarge`]) and per-flight panic isolation, so
//!   overload and bugs degrade into typed rejections, never a wedged
//!   server;
//! - **deadlines with cooperative cancellation**: a per-request deadline
//!   covers queue wait plus simulation; on expiry the client gets a typed
//!   [`proto::Response::DeadlineExceeded`] immediately and the replay is
//!   cancelled through [`warden_sim::CancelToken`], freeing the worker. A
//!   cancelled single-flight leader vacates its slot so coalesced waiters
//!   retry under their own deadlines;
//! - a **byte-budgeted cache** with cost-aware eviction (compute time ×
//!   size; in-flight entries are never evicted) and full residency
//!   metrics;
//! - a **crash-safe disk tier** ([`disk::DiskTier`]) behind the memory
//!   cache: finished results are persisted with the checkpoint module's
//!   atomic-write + checksummed-frame discipline and survive restarts
//!   bit-identically; an fsck-style startup scan quarantines (never
//!   panics on) torn, corrupt or version-skewed entries; a byte budget
//!   with cost-aware eviction bounds it;
//! - **prefix-checkpoint resume**: long replays persist periodic engine
//!   frames (and one on cancellation), so a repeat of interrupted work
//!   resumes from the newest frame instead of cycle 0 — the wire reports
//!   provenance per response ([`proto::ServedFrom`]);
//! - an injectable **storage-fault layer** ([`storage::FaultyStorage`]):
//!   seeded torn writes, `ENOSPC`, corrupt-on-read and crashes on either
//!   side of the rename, under which the tier must degrade (typed counter
//!   bumps, recompute) and never fail a request;
//! - **slow-loris defense**: a mid-frame stall bound drops drip-feeding
//!   connections and frees their slots ([`ServeError::Stalled`]);
//! - a **resilient client** ([`client::ResilientClient`]) that reconnects,
//!   retries with jittered exponential backoff, honors `Busy` retry-after
//!   hints, and enforces an overall per-call deadline — safe because
//!   requests are content-addressed and therefore idempotent;
//! - **observability** through `warden-obs`: queue-depth and in-flight
//!   gauges, latency histograms and cache counters in one
//!   [`warden_obs::MetricsRegistry`] snapshot, plus an optional Chrome
//!   trace-event timeline of every request;
//! - a **graceful drain**: shutdown finishes every queued job and delivers
//!   every pending reply before joining a single thread.
//!
//! The `warden-bench` crate ships the `serve` and `loadgen` binaries; the
//! load generator holds every response to the digest of a directly
//! computed [`warden_sim::SimOutcome`], making the service conformance-
//! testable end to end.

pub mod cache;
pub mod client;
pub mod disk;
pub mod error;
pub mod proto;
pub mod server;
pub mod signal;
pub mod storage;

pub use cache::{CacheStats, Computed, FlightError, SingleFlight, Source};
pub use client::{Client, ResilientClient, RetryPolicy};
pub use disk::{DiskBody, DiskEntry, DiskStats, DiskTier, DiskTierConfig};
pub use error::ServeError;
pub use proto::{
    outcome_digest, protocol_tag, summarize_outcome, ErrorKind, FrameEvent, MachinePreset,
    MachineSpec, OutcomeSummary, Request, Response, ServedFrom, SimRequest,
};
pub use server::{CacheKey, ServeConfig, Server, ServerOptions, ShutdownReport};
pub use signal::{drain_requested, install_sigterm_drain};
pub use storage::{FaultyStorage, RealStorage, Storage, StorageFaultPlan, StorageFaultStats};
