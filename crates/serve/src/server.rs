//! The simulation server: listeners, connection threads, a bounded request
//! queue, and the worker pool that runs replays through the single-flight
//! result cache.
//!
//! Threading model (all `std`, no runtime dependency):
//!
//! - one **acceptor** thread per listener (TCP and/or Unix socket), polling
//!   a non-blocking `accept` so it can observe the drain flag;
//! - one **connection** thread per client, reading frames with a short
//!   read timeout ([`proto::read_frame`] distinguishes an idle connection
//!   from a torn frame) and answering `Ping`/`Metrics` inline;
//! - a **bounded queue** in between: `Simulate` requests are enqueued if
//!   there is room and rejected with a typed [`Response::Busy`] otherwise —
//!   overload degrades into fast rejections, never an unbounded pileup;
//! - `workers` **worker** threads popping jobs and computing through the
//!   [`SingleFlight`] cache, so N identical concurrent requests cost one
//!   simulation. Panics inside a replay are caught per-flight (the
//!   campaign-runner isolation discipline) and surface as typed
//!   [`Response::Error`]s.
//!
//! Shutdown is a drain, not an abort: [`Server::shutdown`] stops intake
//! (new `Simulate` requests get [`Response::Draining`]), lets the workers
//! finish every queued job — each blocked client receives its reply — and
//! only then joins the threads.

use crate::cache::{CacheStats, Computed, FlightError, SingleFlight, Source};
use crate::disk::{DiskStats, DiskTier, DiskTierConfig};
use crate::error::ServeError;
use crate::proto::{
    self, protocol_tag, summarize_outcome, ErrorKind, FrameEvent, OutcomeSummary, Request,
    Response, ServedFrom, SimRequest,
};
use crate::storage::{FaultyStorage, RealStorage, Storage, StorageFaultPlan};
use std::cell::Cell;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use warden_coherence::ProtocolId;
use warden_obs::{ArgVal, AtomicGauge, Gauge, Hist, MetricsRegistry, TraceBuilder};
use warden_pbbs::Scale;
use warden_rt::TraceProgram;
use warden_sim::checkpoint::options_fingerprint;
use warden_sim::{CancelToken, MachineConfig, SimEngine, SimError, SimOptions, SimOutcome};

/// The content address of one simulation result: everything that determines
/// the outcome bytes, nothing that doesn't.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`options_fingerprint`] over the resolved [`SimOptions`].
    pub options_fp: u64,
    /// [`TraceProgram::fingerprint`] of the replayed trace.
    pub trace_fp: u64,
    /// [`warden_sim::MachineConfig::fingerprint`] of the machine.
    pub machine_fp: u64,
    /// The protocol's canonical wire tag ([`protocol_tag`]).
    pub protocol: u8,
}

/// Tunables that used to be hard-coded constants, now validated at
/// [`Server::start`]: every timeout the serving loops run on, the
/// per-request deadline, the `Busy` retry hint, and the result-cache byte
/// budget.
#[derive(Clone, Debug)]
pub struct ServerOptions {
    /// Per-connection socket read timeout. This is the tick at which an
    /// idle connection re-checks the drain flag, and the resolution of the
    /// mid-frame stall clock.
    pub read_timeout: Duration,
    /// How long a started frame may sit with no new bytes before the
    /// connection is dropped as a slow-loris ([`ServeError::Stalled`]).
    /// Must be at least [`ServerOptions::read_timeout`] (the stall clock
    /// only advances on read-timeout ticks).
    pub frame_stall: Duration,
    /// How long an acceptor sleeps between polls of its non-blocking
    /// listener (bounds both accept latency and drain latency).
    pub accept_poll: Duration,
    /// Deadline for one `Simulate` request, covering queue wait *plus*
    /// simulation. On expiry the client gets a typed
    /// [`Response::DeadlineExceeded`] immediately and the replay is
    /// cooperatively cancelled so the worker frees up. `None` waits
    /// without bound (the pre-deadline behavior).
    pub request_deadline: Option<Duration>,
    /// The backoff hint carried in [`Response::Busy`] replies.
    pub busy_retry_ms: u32,
    /// Byte budget for the result cache (`u64::MAX` = unbounded). Split
    /// evenly across `cache_shards`; cost-aware eviction keeps residency
    /// under it at all times.
    pub cache_budget_bytes: u64,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            read_timeout: Duration::from_millis(50),
            frame_stall: Duration::from_secs(2),
            accept_poll: Duration::from_millis(10),
            request_deadline: None,
            busy_retry_ms: 25,
            cache_budget_bytes: u64::MAX,
        }
    }
}

impl ServerOptions {
    fn validate(&self) -> Result<(), ServeError> {
        let bad = |msg: &str| Err(ServeError::Config(msg.into()));
        if self.read_timeout.is_zero() {
            return bad("read timeout must be non-zero");
        }
        if self.frame_stall < self.read_timeout {
            return bad("frame stall bound must be at least the read timeout \
                 (the stall clock advances on read-timeout ticks)");
        }
        if self.accept_poll.is_zero() {
            return bad("accept poll interval must be non-zero");
        }
        if self.request_deadline.is_some_and(|d| d.is_zero()) {
            return bad("a request deadline must be non-zero (use None for unbounded)");
        }
        if self.busy_retry_ms == 0 {
            return bad("the Busy retry-after hint must be non-zero");
        }
        if self.cache_budget_bytes == 0 {
            return bad("the cache byte budget must be non-zero (use u64::MAX for unbounded)");
        }
        Ok(())
    }
}

/// How to run a [`Server`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// TCP bind address (e.g. `127.0.0.1:0`); `None` disables TCP.
    pub tcp: Option<String>,
    /// Unix-socket path; `None` disables it. Ignored off Unix.
    pub uds: Option<PathBuf>,
    /// Worker threads running simulations.
    pub workers: usize,
    /// Bounded request-queue capacity; a full queue answers `Busy`.
    pub queue_cap: usize,
    /// Frame payload size cap for both directions.
    pub max_frame: u64,
    /// Shards in the result cache.
    pub cache_shards: usize,
    /// Record a Chrome trace-event timeline of every request.
    pub record_trace: bool,
    /// The crash-safe disk tier behind the memory cache (`None` disables
    /// it): finished results survive restarts, and periodic checkpoint
    /// frames let an interrupted replay resume instead of restarting at
    /// cycle 0.
    pub disk: Option<DiskTierConfig>,
    /// Inject seeded storage faults under the disk tier (chaos drills;
    /// requires `disk`). The tier degrades on every injected failure —
    /// requests are still served from memory and recompute.
    pub storage_faults: Option<StorageFaultPlan>,
    /// Event lanes for worker-side simulations ([`SimOptions::lanes`]):
    /// a server-side execution knob, not part of the wire protocol or the
    /// cache key — laned replays are bit-identical to sequential ones, so
    /// results computed at any lane count share one cache entry.
    pub lanes: usize,
    /// Timeouts, deadline, backoff hint and cache budget.
    pub opts: ServerOptions,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            tcp: Some("127.0.0.1:0".to_string()),
            uds: None,
            workers: 2,
            queue_cap: 16,
            max_frame: proto::DEFAULT_MAX_FRAME,
            cache_shards: 8,
            record_trace: false,
            disk: None,
            storage_faults: None,
            lanes: 1,
            opts: ServerOptions::default(),
        }
    }
}

/// What the server hands back after a graceful drain.
#[derive(Clone, Debug)]
pub struct ShutdownReport {
    /// Final metrics snapshot (counters, flattened gauges, histograms).
    pub metrics: MetricsRegistry,
    /// Final result-cache counters.
    pub cache: CacheStats,
    /// Final disk-tier counters, when the tier was configured.
    pub disk: Option<DiskStats>,
    /// The recorded timeline as trace-event JSON, if recording was on.
    pub trace_json: Option<String>,
}

struct Job {
    req: SimRequest,
    reply: SyncSender<Response>,
    enqueued: Instant,
    /// Cancelled by the connection thread when the request's deadline
    /// expires; polled by the replay engine every
    /// [`warden_sim::CANCEL_CHECK_EVENTS`] scheduler steps.
    cancel: CancelToken,
}

/// Mutable serving metrics, updated under one short-lived lock.
struct Meters {
    latency_us: Hist,
    queue_wait_us: Hist,
    queue_depth: Gauge,
    inflight: Gauge,
}

struct Inner {
    cfg: ServeConfig,
    draining: AtomicBool,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    results: SingleFlight<CacheKey, Arc<OutcomeSummary>>,
    /// Built traces, also single-flight: concurrent cold requests for the
    /// same benchmark build its trace once.
    traces: SingleFlight<(&'static str, u8), Arc<TraceProgram>>,
    meters: Mutex<Meters>,
    requests: AtomicU64,
    pings: AtomicU64,
    metrics_reqs: AtomicU64,
    simulates: AtomicU64,
    busy: AtomicU64,
    too_large: AtomicU64,
    drain_rejects: AtomicU64,
    bad_requests: AtomicU64,
    internal_errors: AtomicU64,
    deadline_exceeded: AtomicU64,
    expired_in_queue: AtomicU64,
    stalled_conns: AtomicU64,
    /// Replays resumed from a persisted checkpoint frame instead of
    /// starting at cycle 0.
    resumes: AtomicU64,
    /// Replays that ran from cycle 0 to completion.
    full_sims: AtomicU64,
    disk: Option<Arc<DiskTier>>,
    faults: Option<Arc<FaultyStorage>>,
    conns_live: AtomicGauge,
    trace: Option<Mutex<TraceBuilder>>,
    trace_dropped: AtomicU64,
    started: Instant,
    conns: Mutex<Vec<JoinHandle<()>>>,
}

/// Events kept in a recorded timeline before further ones are counted as
/// dropped instead of queued (a soak run must not grow without bound).
const TRACE_EVENT_CAP: usize = 100_000;

fn scale_wire_tag(s: Scale) -> u8 {
    match s {
        Scale::Tiny => 0,
        Scale::Paper => 1,
    }
}

impl Inner {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn now_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    fn trace_event(&self, f: impl FnOnce(&mut TraceBuilder)) {
        if let Some(trace) = &self.trace {
            let mut t = trace.lock().expect("trace lock");
            if t.len() < TRACE_EVENT_CAP {
                f(&mut t);
            } else {
                self.trace_dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Snapshot everything into one [`MetricsRegistry`] (gauges flattened
    /// through [`Gauge::export_into`], cache counters included).
    fn metrics_snapshot(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.set_counter("serve_requests", self.requests.load(Ordering::Relaxed));
        reg.set_counter("serve_ping", self.pings.load(Ordering::Relaxed));
        reg.set_counter("serve_metrics", self.metrics_reqs.load(Ordering::Relaxed));
        reg.set_counter("serve_simulate", self.simulates.load(Ordering::Relaxed));
        reg.set_counter("serve_busy", self.busy.load(Ordering::Relaxed));
        reg.set_counter("serve_too_large", self.too_large.load(Ordering::Relaxed));
        reg.set_counter("serve_draining", self.drain_rejects.load(Ordering::Relaxed));
        reg.set_counter(
            "serve_bad_request",
            self.bad_requests.load(Ordering::Relaxed),
        );
        reg.set_counter(
            "serve_internal_error",
            self.internal_errors.load(Ordering::Relaxed),
        );
        reg.set_counter(
            "serve_deadline_exceeded",
            self.deadline_exceeded.load(Ordering::Relaxed),
        );
        reg.set_counter(
            "serve_expired_in_queue",
            self.expired_in_queue.load(Ordering::Relaxed),
        );
        reg.set_counter("serve_stalled", self.stalled_conns.load(Ordering::Relaxed));
        self.conns_live.export_into(&mut reg, "serve_conns");
        let c = self.results.stats();
        reg.set_counter("cache_hits", c.hits);
        reg.set_counter("cache_misses", c.misses);
        reg.set_counter("cache_coalesced", c.coalesced);
        reg.set_counter("cache_failures", c.failures);
        reg.set_counter("cache_cancelled", c.cancelled);
        reg.set_counter("cache_evictions", c.evictions);
        reg.set_counter("cache_evicted_bytes", c.evicted_bytes);
        reg.set_counter("cache_resident_bytes", c.resident_bytes);
        reg.set_counter("cache_resident_peak", c.resident_peak);
        reg.set_counter(
            "resume_from_checkpoint",
            self.resumes.load(Ordering::Relaxed),
        );
        reg.set_counter("serve_full_sims", self.full_sims.load(Ordering::Relaxed));
        if let Some(disk) = &self.disk {
            let d = disk.stats();
            reg.set_counter("disk_hits", d.hits);
            reg.set_counter("disk_misses", d.misses);
            reg.set_counter("disk_checkpoint_hits", d.checkpoint_hits);
            reg.set_counter("disk_checkpoints_written", d.checkpoints_written);
            reg.set_counter("disk_writes", d.writes);
            reg.set_counter("disk_quarantined", d.quarantined);
            reg.set_counter("disk_evictions", d.evictions);
            reg.set_counter("disk_evicted_bytes", d.evicted_bytes);
            reg.set_counter("disk_resident_bytes", d.resident_bytes);
            reg.set_counter("disk_resident_peak", d.resident_peak);
            reg.set_counter("disk_enospc_degraded", d.enospc_degraded);
            reg.set_counter("disk_write_errors", d.write_errors);
            reg.set_counter("disk_read_errors", d.read_errors);
        }
        if let Some(faults) = &self.faults {
            let f = faults.stats();
            reg.set_counter("storage_faults_injected", f.injected());
            reg.set_counter("storage_fault_torn_writes", f.torn_writes);
            reg.set_counter("storage_fault_enospc", f.enospc);
            reg.set_counter("storage_fault_corrupt_reads", f.corrupt_reads);
            reg.set_counter("storage_fault_crash_before_rename", f.crash_before_rename);
            reg.set_counter("storage_fault_crash_after_rename", f.crash_after_rename);
        }
        reg.set_counter(
            "trace_events_dropped",
            self.trace_dropped.load(Ordering::Relaxed),
        );
        let m = self.meters.lock().expect("meters lock");
        m.queue_depth.export_into(&mut reg, "serve_queue_depth");
        m.inflight.export_into(&mut reg, "serve_inflight");
        reg.set_hist("serve_latency_us", m.latency_us.clone());
        reg.set_hist("serve_queue_wait_us", m.queue_wait_us.clone());
        reg
    }

    /// Enqueue a simulation or reject it; on success, block until a worker
    /// replies or the request's deadline (queue wait + simulation) expires.
    /// Called from connection threads, so blocking here holds only this
    /// client's thread. On expiry the job's cancel token fires — the
    /// replay engine observes it within one poll interval, the worker
    /// frees up, and this client gets a typed `DeadlineExceeded` *now*,
    /// not when the worker notices.
    fn submit(&self, req: SimRequest) -> Response {
        let (tx, rx) = mpsc::sync_channel(1);
        let cancel = CancelToken::new();
        let accepted = Instant::now();
        {
            let mut q = self.queue.lock().expect("queue lock");
            // Checked under the queue lock: after `shutdown` flips the
            // flag and takes this lock once, no job can slip in.
            if self.draining() {
                self.drain_rejects.fetch_add(1, Ordering::Relaxed);
                return Response::Draining;
            }
            if q.len() >= self.cfg.queue_cap {
                self.busy.fetch_add(1, Ordering::Relaxed);
                let ts = self.now_us();
                self.trace_event(|t| {
                    t.instant(
                        "busy",
                        ts,
                        1,
                        0,
                        vec![("queue_len".into(), ArgVal::U64(q.len() as u64))],
                    )
                });
                return Response::Busy {
                    queue_len: q.len() as u32,
                    queue_cap: self.cfg.queue_cap as u32,
                    retry_after_ms: self.cfg.opts.busy_retry_ms,
                };
            }
            q.push_back(Job {
                req,
                reply: tx,
                enqueued: accepted,
                cancel: cancel.clone(),
            });
            let depth = q.len() as u64;
            self.meters
                .lock()
                .expect("meters lock")
                .queue_depth
                .set(depth);
            self.queue_cv.notify_one();
        }
        let worker_died = |inner: &Inner| {
            inner.internal_errors.fetch_add(1, Ordering::Relaxed);
            Response::Error {
                kind: ErrorKind::Internal,
                msg: "worker dropped the request".to_string(),
            }
        };
        match self.cfg.opts.request_deadline {
            None => match rx.recv() {
                Ok(resp) => resp,
                Err(_) => worker_died(self),
            },
            Some(deadline) => match rx.recv_timeout(deadline) {
                Ok(resp) => resp,
                Err(RecvTimeoutError::Timeout) => {
                    cancel.cancel();
                    self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                    let ts = self.now_us();
                    self.trace_event(|t| {
                        t.instant(
                            "deadline_exceeded",
                            ts,
                            1,
                            0,
                            vec![(
                                "deadline_ms".into(),
                                ArgVal::U64(deadline.as_millis() as u64),
                            )],
                        )
                    });
                    Response::DeadlineExceeded {
                        deadline_ms: deadline.as_millis() as u64,
                        elapsed_ms: accepted.elapsed().as_millis() as u64,
                    }
                }
                Err(RecvTimeoutError::Disconnected) => worker_died(self),
            },
        }
    }

    /// Resolve and run one simulation request, through both caches. The
    /// cancel token rides inside [`SimOptions`] but is excluded from the
    /// options fingerprint, so two requests for the same work with
    /// different tokens still share one cache entry.
    fn run_simulate(&self, req: &SimRequest, cancel: &CancelToken, enqueued: Instant) -> Response {
        let machine = match req.machine.to_machine() {
            Ok(m) => m,
            Err(e) => {
                self.bad_requests.fetch_add(1, Ordering::Relaxed);
                return Response::Error {
                    kind: ErrorKind::BadRequest,
                    msg: e.to_string(),
                };
            }
        };
        let opts = SimOptions {
            check: req.check,
            cancel: Some(cancel.clone()),
            // Like the cancel token, the lane count is excluded from the
            // options fingerprint: results are lane-count-invariant.
            lanes: self.cfg.lanes,
            ..SimOptions::default()
        };
        let (bench, scale) = (req.bench, req.scale);
        let trace = match self
            .traces
            .get_or_compute((bench.name(), scale_wire_tag(scale)), || {
                Ok(Arc::new(bench.build(scale)))
            }) {
            Ok((t, _)) => t,
            Err(msg) => {
                self.internal_errors.fetch_add(1, Ordering::Relaxed);
                return Response::Error {
                    kind: ErrorKind::Internal,
                    msg: format!("trace construction failed: {msg}"),
                };
            }
        };
        let key = CacheKey {
            options_fp: options_fingerprint(&opts),
            trace_fp: trace.fingerprint(),
            machine_fp: machine.fingerprint(),
            protocol: protocol_tag(req.protocol),
        };
        // Set by the leader closure: whether this flight's result came off
        // the disk tier, resumed from a checkpoint frame, or ran from
        // cycle 0. Callers that hit the memory cache or coalesced never run
        // the closure, so `Source` overrides it below.
        let leader_served = Cell::new(ServedFrom::Fresh);
        let computed = self.results.get_or_compute_with(key, || {
            self.leader_compute(&key, &trace, &machine, req.protocol, &opts, &leader_served)
        });
        match computed {
            Ok((summary, source)) => Response::Outcome {
                summary: Box::new((*summary).clone()),
                served: match source {
                    Source::Cached => ServedFrom::Memory,
                    Source::Coalesced => ServedFrom::Coalesced,
                    Source::Fresh => leader_served.get(),
                },
            },
            Err(FlightError::Cancelled) => {
                // The connection thread already answered the client when
                // the deadline fired; this reply goes to a dead receiver
                // and exists so the worker's bookkeeping stays uniform.
                let deadline_ms = self
                    .cfg
                    .opts
                    .request_deadline
                    .map_or(0, |d| d.as_millis() as u64);
                Response::DeadlineExceeded {
                    deadline_ms,
                    elapsed_ms: enqueued.elapsed().as_millis() as u64,
                }
            }
            Err(FlightError::Failed(msg)) => {
                self.internal_errors.fetch_add(1, Ordering::Relaxed);
                Response::Error {
                    kind: ErrorKind::Internal,
                    msg,
                }
            }
        }
    }

    /// The single-flight leader's compute path, in durability order:
    /// 1. the disk tier may hold the finished result (a prior process
    ///    computed it — zero re-simulation);
    /// 2. a persisted checkpoint frame may hold a prefix of the run (a
    ///    crashed, cancelled or evicted flight got partway — resume from
    ///    its step count instead of cycle 0);
    /// 3. otherwise simulate from scratch.
    ///
    /// While a simulation runs, periodic frames (and a final frame on
    /// cooperative cancellation) are persisted so the *next* attempt
    /// starts where this one stopped. Every disk failure degrades to the
    /// slower path with a typed counter bump; no request fails because
    /// storage did.
    fn leader_compute(
        &self,
        key: &CacheKey,
        trace: &TraceProgram,
        machine: &MachineConfig,
        protocol: ProtocolId,
        opts: &SimOptions,
        served: &Cell<ServedFrom>,
    ) -> Result<Computed<Arc<OutcomeSummary>>, String> {
        if let Some(disk) = &self.disk {
            if let Some((summary, _compute_us)) = disk.result(key) {
                served.set(ServedFrom::Disk);
                return Ok(Computed::Ready(Arc::new(summary)));
            }
        }
        let began = Instant::now();
        let mut engine: Option<SimEngine<'_>> = None;
        if let Some(disk) = &self.disk {
            if let Some((_steps, frame)) = disk.checkpoint(key) {
                match SimEngine::resume_from_bytes(trace, machine, protocol, opts, &frame) {
                    Ok(eng) => {
                        served.set(ServedFrom::Resumed);
                        self.resumes.fetch_add(1, Ordering::Relaxed);
                        engine = Some(eng);
                    }
                    // The outer frame verified but the engine refused the
                    // payload (identity mismatch from a fingerprint
                    // collision, inner corruption): set it aside and run
                    // from cycle 0.
                    Err(_) => disk.quarantine_checkpoint(key),
                }
            }
        }
        let result: Result<SimOutcome, SimError> = match engine {
            Some(eng) => self.run_framed(eng, key),
            None => SimEngine::try_new(trace, machine, protocol, opts)
                .and_then(|eng| self.run_framed(eng, key)),
        };
        match result {
            Ok(out) => {
                if served.get() == ServedFrom::Fresh {
                    self.full_sims.fetch_add(1, Ordering::Relaxed);
                }
                let summary = summarize_outcome(&out);
                if let Some(disk) = &self.disk {
                    disk.put_result(key, &summary, began.elapsed().as_micros() as u64);
                }
                Ok(Computed::Ready(Arc::new(summary)))
            }
            // A cancelled leader vacates its slot: waiters coalesced on
            // this flight loop back and retry under their own deadlines
            // instead of inheriting this request's failure. With a disk
            // tier, the final frame written at cancellation means the
            // retry resumes rather than restarts.
            Err(SimError::Cancelled { .. }) => Ok(Computed::Cancelled),
            Err(e) => Err(e.to_string()),
        }
    }

    /// Run an engine to completion, persisting periodic checkpoint frames
    /// when the disk tier asks for them.
    fn run_framed(&self, eng: SimEngine<'_>, key: &CacheKey) -> Result<SimOutcome, SimError> {
        match &self.disk {
            Some(disk) if disk.checkpoint_every() > 0 => eng
                .run_with_cancel_frames(disk.checkpoint_every(), |steps, frame| {
                    disk.put_checkpoint(key, steps, frame)
                }),
            _ => eng.run_with_cancel(),
        }
    }
}

fn worker_loop(inner: &Inner, worker_id: u32) {
    loop {
        let job = {
            let mut q = inner.queue.lock().expect("queue lock");
            loop {
                if let Some(job) = q.pop_front() {
                    let depth = q.len() as u64;
                    let mut m = inner.meters.lock().expect("meters lock");
                    m.queue_depth.set(depth);
                    m.inflight.add(1);
                    break job;
                }
                if inner.draining() {
                    return;
                }
                q = inner.queue_cv.wait(q).expect("queue lock");
            }
        };
        let Job {
            req,
            reply,
            enqueued,
            cancel,
        } = job;
        let waited_us = enqueued.elapsed().as_micros() as u64;
        if cancel.is_cancelled() {
            // The client's deadline expired while this job sat queued; its
            // connection thread already replied. Skip the replay entirely.
            inner.expired_in_queue.fetch_add(1, Ordering::Relaxed);
            inner.meters.lock().expect("meters lock").inflight.sub(1);
            continue;
        }
        let start = inner.now_us();
        let began = Instant::now();
        let response = inner.run_simulate(&req, &cancel, enqueued);
        let compute_us = began.elapsed().as_micros() as u64;
        {
            let mut m = inner.meters.lock().expect("meters lock");
            m.latency_us.add(waited_us + compute_us);
            m.queue_wait_us.add(waited_us);
            m.inflight.sub(1);
        }
        let served = match &response {
            Response::Outcome { served, .. } => Some(*served),
            _ => None,
        };
        inner.trace_event(|t| {
            t.complete(
                &format!("{}/{:?}", req.bench.name(), req.protocol),
                start,
                compute_us.max(1),
                1,
                worker_id + 1,
                vec![
                    (
                        "cache_hit".into(),
                        ArgVal::U64(served.is_some_and(ServedFrom::cache_hit) as u64),
                    ),
                    (
                        "served".into(),
                        ArgVal::Str(served.map_or("rejected", ServedFrom::label).into()),
                    ),
                    ("queue_wait_us".into(), ArgVal::U64(waited_us)),
                ],
            )
        });
        // The client may have vanished; a dead receiver is not an error.
        let _ = reply.send(response);
    }
}

/// Serve one connection until EOF, error, stall, or drain.
fn connection_loop(inner: &Arc<Inner>, stream: &mut (impl Read + Write)) {
    let max = inner.cfg.max_frame;
    let stall = Some(inner.cfg.opts.frame_stall);
    loop {
        match proto::read_frame_stall_bounded(stream, max, stall) {
            Ok(FrameEvent::Idle) => {
                if inner.draining() {
                    return;
                }
            }
            Ok(FrameEvent::Eof) => return,
            Ok(FrameEvent::Frame(payload)) => {
                inner.requests.fetch_add(1, Ordering::Relaxed);
                let response = match Request::decode(&payload) {
                    Ok(Request::Ping) => {
                        inner.pings.fetch_add(1, Ordering::Relaxed);
                        Response::Pong
                    }
                    Ok(Request::Metrics) => {
                        inner.metrics_reqs.fetch_add(1, Ordering::Relaxed);
                        Response::Metrics(inner.metrics_snapshot())
                    }
                    Ok(Request::Simulate(req)) => {
                        inner.simulates.fetch_add(1, Ordering::Relaxed);
                        inner.submit(req)
                    }
                    Err(e) => {
                        // The frame was well-delimited, so the stream is
                        // still in sync: answer and keep the connection.
                        inner.bad_requests.fetch_add(1, Ordering::Relaxed);
                        Response::Error {
                            kind: ErrorKind::BadRequest,
                            msg: e.to_string(),
                        }
                    }
                };
                if proto::write_frame(stream, &response.encode(), max).is_err() {
                    return;
                }
            }
            Err(ServeError::FrameTooLarge { len, max }) => {
                // The oversized payload was never read, so the stream is
                // desynced: reply, then hang up.
                inner.too_large.fetch_add(1, Ordering::Relaxed);
                let resp = Response::TooLarge { len, max };
                let _ = proto::write_frame(stream, &resp.encode(), max);
                return;
            }
            Err(ServeError::Stalled { .. }) => {
                // Slow-loris: the peer started a frame and drip-fed (or
                // abandoned) it. The stream is desynced mid-frame, so no
                // reply is possible — free the connection slot.
                inner.stalled_conns.fetch_add(1, Ordering::Relaxed);
                return;
            }
            Err(e @ (ServeError::BadMagic(_) | ServeError::BadVersion(_))) => {
                inner.bad_requests.fetch_add(1, Ordering::Relaxed);
                let resp = Response::Error {
                    kind: ErrorKind::BadRequest,
                    msg: e.to_string(),
                };
                let _ = proto::write_frame(stream, &resp.encode(), max);
                return;
            }
            Err(_) => return,
        }
    }
}

fn spawn_conn(inner: &Arc<Inner>, mut stream: impl Read + Write + Send + 'static) {
    let inner2 = Arc::clone(inner);
    inner.conns_live.add(1);
    let handle = std::thread::spawn(move || {
        connection_loop(&inner2, &mut stream);
        inner2.conns_live.sub(1);
    });
    let mut conns = inner.conns.lock().expect("conns lock");
    // Reap finished handlers so a long-lived server's handle list stays
    // proportional to *live* connections, not historical ones.
    conns.retain(|h| !h.is_finished());
    conns.push(handle);
}

fn tcp_acceptor(inner: Arc<Inner>, listener: TcpListener) {
    let poll = inner.cfg.opts.accept_poll;
    let read_timeout = inner.cfg.opts.read_timeout;
    while !inner.draining() {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(read_timeout));
                spawn_conn(&inner, stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(poll);
            }
            Err(_) => std::thread::sleep(poll),
        }
    }
}

#[cfg(unix)]
fn uds_acceptor(inner: Arc<Inner>, listener: std::os::unix::net::UnixListener) {
    let poll = inner.cfg.opts.accept_poll;
    let read_timeout = inner.cfg.opts.read_timeout;
    while !inner.draining() {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_read_timeout(Some(read_timeout));
                spawn_conn(&inner, stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(poll);
            }
            Err(_) => std::thread::sleep(poll),
        }
    }
}

/// A running server. Dropping it without calling [`Server::shutdown`]
/// leaks the serving threads; tests and binaries should always drain.
pub struct Server {
    inner: Arc<Inner>,
    acceptors: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    tcp_addr: Option<SocketAddr>,
    uds_path: Option<PathBuf>,
}

impl Server {
    /// Bind the configured listeners and start serving.
    pub fn start(cfg: ServeConfig) -> Result<Server, ServeError> {
        if cfg.tcp.is_none() && cfg.uds.is_none() {
            return Err(ServeError::Config(
                "at least one of a TCP address or a Unix-socket path is required".into(),
            ));
        }
        if cfg.workers == 0 {
            return Err(ServeError::Config("at least one worker is required".into()));
        }
        if cfg.queue_cap == 0 {
            return Err(ServeError::Config(
                "the request queue needs a non-zero capacity".into(),
            ));
        }
        cfg.opts.validate()?;
        if cfg.storage_faults.is_some() && cfg.disk.is_none() {
            return Err(ServeError::Config(
                "storage-fault injection requires a disk tier to inject into".into(),
            ));
        }
        if let Some(plan) = &cfg.storage_faults {
            plan.validate().map_err(ServeError::Config)?;
        }
        let mut faults = None;
        let disk = match &cfg.disk {
            None => None,
            Some(tier_cfg) => {
                let storage: Arc<dyn Storage> = match cfg.storage_faults {
                    None => Arc::new(RealStorage),
                    Some(plan) => {
                        let faulty = Arc::new(FaultyStorage::new(RealStorage, plan));
                        faults = Some(Arc::clone(&faulty));
                        faulty
                    }
                };
                Some(Arc::new(
                    DiskTier::open(tier_cfg.clone(), storage).map_err(ServeError::Config)?,
                ))
            }
        };
        let trace = cfg.record_trace.then(|| {
            let mut t = TraceBuilder::new();
            t.process_name(1, "warden-serve");
            for w in 0..cfg.workers {
                t.thread_name(1, w as u32 + 1, &format!("worker-{w}"));
            }
            Mutex::new(t)
        });
        let inner = Arc::new(Inner {
            draining: AtomicBool::new(false),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            // Weigh cached summaries by their exact wire size: it is what
            // a hit actually ships, and it makes the byte budget auditable
            // from the outside.
            results: SingleFlight::bounded(
                cfg.cache_shards,
                cfg.opts.cache_budget_bytes,
                |v: &Arc<OutcomeSummary>| v.wire_size(),
            ),
            traces: SingleFlight::new(4),
            meters: Mutex::new(Meters {
                latency_us: Hist::new(),
                queue_wait_us: Hist::new(),
                queue_depth: Gauge::new(),
                inflight: Gauge::new(),
            }),
            requests: AtomicU64::new(0),
            pings: AtomicU64::new(0),
            metrics_reqs: AtomicU64::new(0),
            simulates: AtomicU64::new(0),
            busy: AtomicU64::new(0),
            too_large: AtomicU64::new(0),
            drain_rejects: AtomicU64::new(0),
            bad_requests: AtomicU64::new(0),
            internal_errors: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            expired_in_queue: AtomicU64::new(0),
            stalled_conns: AtomicU64::new(0),
            resumes: AtomicU64::new(0),
            full_sims: AtomicU64::new(0),
            disk,
            faults,
            conns_live: AtomicGauge::new(),
            trace,
            trace_dropped: AtomicU64::new(0),
            started: Instant::now(),
            conns: Mutex::new(Vec::new()),
            cfg: cfg.clone(),
        });

        let mut acceptors = Vec::new();
        let mut tcp_addr = None;
        if let Some(addr) = &cfg.tcp {
            let listener = TcpListener::bind(addr).map_err(|e| {
                ServeError::Config(format!("cannot bind TCP listener on {addr}: {e}"))
            })?;
            listener.set_nonblocking(true)?;
            tcp_addr = Some(listener.local_addr()?);
            let inner2 = Arc::clone(&inner);
            acceptors.push(std::thread::spawn(move || tcp_acceptor(inner2, listener)));
        }
        let mut uds_path = None;
        #[cfg(unix)]
        if let Some(path) = &cfg.uds {
            // A stale socket file from a previous run would fail the bind.
            let _ = std::fs::remove_file(path);
            let listener = std::os::unix::net::UnixListener::bind(path).map_err(|e| {
                ServeError::Config(format!("cannot bind Unix socket {}: {e}", path.display()))
            })?;
            listener.set_nonblocking(true)?;
            uds_path = Some(path.clone());
            let inner2 = Arc::clone(&inner);
            acceptors.push(std::thread::spawn(move || uds_acceptor(inner2, listener)));
        }
        #[cfg(not(unix))]
        if cfg.uds.is_some() && cfg.tcp.is_none() {
            return Err(ServeError::Config(
                "Unix sockets are unavailable on this platform".into(),
            ));
        }

        let workers = (0..cfg.workers)
            .map(|w| {
                let inner2 = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner2, w as u32))
            })
            .collect();

        Ok(Server {
            inner,
            acceptors,
            workers,
            tcp_addr,
            uds_path,
        })
    }

    /// The bound TCP address (with the real port when `127.0.0.1:0` was
    /// requested).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The bound Unix-socket path.
    pub fn uds_path(&self) -> Option<&PathBuf> {
        self.uds_path.as_ref()
    }

    /// A live metrics snapshot.
    pub fn metrics_snapshot(&self) -> MetricsRegistry {
        self.inner.metrics_snapshot()
    }

    /// Live result-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.results.stats()
    }

    /// Live disk-tier counters, when the tier is configured.
    pub fn disk_stats(&self) -> Option<DiskStats> {
        self.inner.disk.as_ref().map(|d| d.stats())
    }

    /// Drain and stop: refuse new work, finish every queued job (each
    /// blocked client gets its reply), then join acceptors, workers and
    /// connection threads, in that order.
    pub fn shutdown(self) -> ShutdownReport {
        self.inner.draining.store(true, Ordering::SeqCst);
        // Take the queue lock once so every in-flight `submit` has either
        // enqueued (and will be drained) or will observe the flag.
        drop(self.inner.queue.lock().expect("queue lock"));
        self.inner.queue_cv.notify_all();
        for a in self.acceptors {
            let _ = a.join();
        }
        for w in self.workers {
            let _ = w.join();
        }
        let conns = std::mem::take(&mut *self.inner.conns.lock().expect("conns lock"));
        for c in conns {
            let _ = c.join();
        }
        if let Some(path) = &self.uds_path {
            let _ = std::fs::remove_file(path);
        }
        let trace_json = self
            .inner
            .trace
            .as_ref()
            .map(|t| t.lock().expect("trace lock").to_json());
        ShutdownReport {
            metrics: self.inner.metrics_snapshot(),
            cache: self.inner.results.stats(),
            disk: self.inner.disk.as_ref().map(|d| d.stats()),
            trace_json,
        }
    }
}
