//! Typed failures for the serving layer.
//!
//! Disk-tier storage failures are deliberately absent: the durable tier
//! ([`crate::DiskTier`]) never fails a request — ENOSPC, write errors, and
//! corrupt entries degrade to memory-only serving or a recomputation, each
//! recorded by a typed counter in [`crate::DiskStats`] rather than an error
//! a client could see.

use std::fmt;
use warden_mem::codec::CodecError;

/// Everything that can go wrong speaking the wire protocol or running the
/// server — recoverable conditions are typed, never panics.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// An underlying socket operation failed.
    Io(std::io::Error),
    /// A frame did not start with the `WSRV` magic.
    BadMagic([u8; 4]),
    /// A frame declared an unknown protocol version.
    BadVersion(u8),
    /// A frame declared a payload longer than the configured cap.
    FrameTooLarge {
        /// Declared payload length.
        len: u64,
        /// The cap it exceeded.
        max: u64,
    },
    /// A frame payload failed to decode.
    Codec(CodecError),
    /// The server could not be configured or started (no listener, unusable
    /// bind address, ...).
    Config(String),
    /// A peer answered with something the caller cannot use (e.g. a
    /// non-`Outcome` response where a result was required).
    UnexpectedResponse(String),
    /// A peer started a frame but stopped sending mid-frame for longer
    /// than the frame deadline (slow-loris protection).
    Stalled {
        /// How long the incomplete frame sat idle.
        stalled_ms: u64,
        /// Bytes of the frame that did arrive.
        got: usize,
        /// Bytes the frame header promised.
        want: usize,
    },
    /// The caller's deadline expired before a usable response arrived.
    Deadline {
        /// The deadline that was exceeded.
        deadline_ms: u64,
    },
    /// The resilient client exhausted its retry budget. The message
    /// carries the final attempt's failure.
    RetriesExhausted {
        /// Attempts made (initial call + retries).
        attempts: u32,
        /// The last failure, rendered.
        last: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "socket I/O failed: {e}"),
            ServeError::BadMagic(m) => write!(f, "not a warden-serve frame (magic {m:02x?})"),
            ServeError::BadVersion(v) => write!(f, "unsupported wire-protocol version {v}"),
            ServeError::FrameTooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte cap")
            }
            ServeError::Codec(e) => write!(f, "malformed frame payload: {e}"),
            ServeError::Config(msg) => write!(f, "server configuration: {msg}"),
            ServeError::UnexpectedResponse(msg) => write!(f, "unexpected response: {msg}"),
            ServeError::Stalled {
                stalled_ms,
                got,
                want,
            } => write!(
                f,
                "peer stalled mid-frame for {stalled_ms} ms ({got}/{want} bytes arrived)"
            ),
            ServeError::Deadline { deadline_ms } => {
                write!(f, "deadline of {deadline_ms} ms exceeded")
            }
            ServeError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for ServeError {
    fn from(e: CodecError) -> ServeError {
        ServeError::Codec(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> ServeError {
        ServeError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        assert!(ServeError::BadMagic(*b"HTTP").to_string().contains("magic"));
        assert!(ServeError::FrameTooLarge { len: 9, max: 4 }
            .to_string()
            .contains("exceeds"));
        let e = ServeError::from(CodecError::BadTag {
            what: "request",
            tag: 9,
        });
        assert!(e.to_string().contains("malformed"));
    }
}
