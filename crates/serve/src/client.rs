//! A blocking client for the `warden-serve` wire protocol.
//!
//! Generic over any `Read + Write` stream, so the same request/response
//! logic drives TCP sockets, Unix sockets and in-memory test doubles.
//! Client sockets stay fully blocking — simulations take real time, and
//! [`proto::read_frame`] only reports [`FrameEvent::Idle`] on a read
//! timeout, which a blocking socket never produces.

use crate::error::ServeError;
use crate::proto::{self, FrameEvent, OutcomeSummary, Request, Response, ServedFrom, SimRequest};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A connected client.
pub struct Client<S> {
    stream: S,
    max_frame: u64,
}

impl Client<TcpStream> {
    /// Connect over TCP.
    pub fn connect(addr: &str) -> Result<Client<TcpStream>, ServeError> {
        let stream = TcpStream::connect(addr).map_err(ServeError::Io)?;
        let _ = stream.set_nodelay(true);
        Ok(Client::over(stream))
    }
}

#[cfg(unix)]
impl Client<std::os::unix::net::UnixStream> {
    /// Connect over a Unix socket.
    pub fn connect_uds(
        path: &std::path::Path,
    ) -> Result<Client<std::os::unix::net::UnixStream>, ServeError> {
        let stream = std::os::unix::net::UnixStream::connect(path).map_err(ServeError::Io)?;
        Ok(Client::over(stream))
    }
}

impl<S: Read + Write> Client<S> {
    /// Wrap an already-connected stream.
    pub fn over(stream: S) -> Client<S> {
        Client {
            stream,
            max_frame: proto::DEFAULT_MAX_FRAME,
        }
    }

    /// Override the frame size cap (must match the server's).
    pub fn with_max_frame(mut self, max: u64) -> Client<S> {
        self.max_frame = max;
        self
    }

    /// Send one request and wait for its response.
    pub fn call(&mut self, req: &Request) -> Result<Response, ServeError> {
        proto::write_frame(&mut self.stream, &req.encode(), self.max_frame)?;
        loop {
            match proto::read_frame(&mut self.stream, self.max_frame)? {
                FrameEvent::Frame(payload) => return Ok(Response::decode(&payload)?),
                FrameEvent::Idle => continue,
                FrameEvent::Eof => {
                    return Err(ServeError::UnexpectedResponse(
                        "server closed the connection before replying".to_string(),
                    ))
                }
            }
        }
    }

    /// Liveness check: send `Ping`, expect `Pong`.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ServeError::UnexpectedResponse(format!(
                "ping answered with {other:?}"
            ))),
        }
    }

    /// Fetch the server's metrics snapshot.
    pub fn metrics(&mut self) -> Result<warden_obs::MetricsRegistry, ServeError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(reg) => Ok(reg),
            other => Err(ServeError::UnexpectedResponse(format!(
                "metrics answered with {other:?}"
            ))),
        }
    }

    /// Run one simulation, retrying `Busy` with a linear backoff for up to
    /// `tries` attempts. Returns the summary and its provenance (which
    /// cache tier served it, or that it was resumed or freshly computed).
    /// `Draining`, `Error` and exhausted retries are typed failures.
    pub fn simulate(
        &mut self,
        req: SimRequest,
        tries: usize,
    ) -> Result<(OutcomeSummary, ServedFrom), ServeError> {
        let mut last_busy = None;
        for attempt in 0..tries.max(1) {
            match self.call(&Request::Simulate(req))? {
                Response::Outcome { summary, served } => return Ok((*summary, served)),
                Response::Busy {
                    queue_len,
                    queue_cap,
                    retry_after_ms,
                } => {
                    last_busy = Some((queue_len, queue_cap));
                    // Honor the server's hint as the backoff floor.
                    let backoff = (5 * (attempt as u64 + 1)).max(retry_after_ms as u64);
                    std::thread::sleep(Duration::from_millis(backoff));
                }
                other => {
                    return Err(ServeError::UnexpectedResponse(format!(
                        "simulate answered with {other:?}"
                    )))
                }
            }
        }
        let (len, cap) = last_busy.unwrap_or((0, 0));
        Err(ServeError::UnexpectedResponse(format!(
            "server still busy after {tries} attempts (queue {len}/{cap})"
        )))
    }
}

// ---------------------------------------------------------------------------
// The resilient client.

/// How a [`ResilientClient`] retries: attempt budget, exponential backoff
/// with deterministic jitter, an overall per-call deadline, and the
/// mid-frame stall bound it tolerates from the server.
///
/// Re-issuing a `Simulate` after a connection failure is safe because
/// requests are **content-addressed**: a retry of work the server already
/// finished is served from the result cache (or coalesced onto the
/// in-flight computation), never recomputed — the conformance suite pins
/// this.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts per call (first try included). At least 1.
    pub max_attempts: u32,
    /// Backoff before retry `n` is `base_backoff × 2ⁿ`, capped at
    /// [`RetryPolicy::max_backoff`], clamped to at least one millisecond,
    /// then jittered uniformly over `[exp/2, exp]` of that clamped value.
    /// The clamp is what keeps a zero (or sub-millisecond) base from
    /// degenerating into a hot spin of back-to-back retries.
    pub base_backoff: Duration,
    /// Upper bound on one backoff sleep.
    pub max_backoff: Duration,
    /// Overall wall-clock budget for one call, covering every reconnect,
    /// backoff and wait. `None` relies on the attempt budget alone.
    pub call_deadline: Option<Duration>,
    /// How long the server may stall mid-frame before this client drops
    /// the connection and retries.
    pub frame_stall: Duration,
    /// Seed for the jitter PRNG — equal seeds retry on equal schedules,
    /// which keeps chaos runs reproducible.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            call_deadline: None,
            frame_stall: Duration::from_secs(2),
            seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl RetryPolicy {
    /// Reject policies that cannot make progress. Called by the
    /// [`ResilientClient`] constructors, so a nonsensical policy fails
    /// loudly at build time instead of mid-retry-storm.
    pub fn validate(&self) -> Result<(), ServeError> {
        let bad = |msg: String| Err(ServeError::Config(msg));
        if self.max_attempts == 0 {
            return bad("retry policy: max_attempts must be at least 1".into());
        }
        if self.max_backoff < self.base_backoff {
            return bad(format!(
                "retry policy: max_backoff ({:?}) must be >= base_backoff ({:?})",
                self.max_backoff, self.base_backoff
            ));
        }
        if self.frame_stall.is_zero() {
            return bad("retry policy: frame_stall must be positive".into());
        }
        if let Some(d) = self.call_deadline {
            if d.is_zero() {
                return bad("retry policy: call_deadline, when set, must be positive".into());
            }
        }
        Ok(())
    }
}

enum Endpoint {
    Tcp(String),
    #[cfg(unix)]
    Uds(std::path::PathBuf),
}

trait Conn: Read + Write + Send {}
impl<T: Read + Write + Send> Conn for T {}

/// A self-healing client: dials lazily, reconnects after any transport
/// failure, retries with jittered exponential backoff, honors the
/// server's `Busy` retry-after hint as its backoff floor, and enforces an
/// overall per-call deadline. Built for hostile networks — the chaos
/// harness drives the full conformance suite through it.
pub struct ResilientClient {
    endpoint: Endpoint,
    max_frame: u64,
    policy: RetryPolicy,
    conn: Option<Box<dyn Conn>>,
    rng: u64,
    /// Reconnections performed over this client's lifetime.
    reconnects: u64,
    /// Retried calls (any attempt after the first) over its lifetime.
    retries: u64,
}

/// The poll tick for deadline checks while waiting on a response.
const POLL_TICK: Duration = Duration::from_millis(25);

impl ResilientClient {
    /// A client for a TCP endpoint. Validates the policy, but does not
    /// dial until the first call.
    pub fn tcp(
        addr: impl Into<String>,
        policy: RetryPolicy,
    ) -> Result<ResilientClient, ServeError> {
        ResilientClient::over_endpoint(Endpoint::Tcp(addr.into()), policy)
    }

    /// A client for a Unix-socket endpoint. Validates the policy, but does
    /// not dial until the first call.
    #[cfg(unix)]
    pub fn uds(
        path: impl Into<std::path::PathBuf>,
        policy: RetryPolicy,
    ) -> Result<ResilientClient, ServeError> {
        ResilientClient::over_endpoint(Endpoint::Uds(path.into()), policy)
    }

    fn over_endpoint(
        endpoint: Endpoint,
        policy: RetryPolicy,
    ) -> Result<ResilientClient, ServeError> {
        policy.validate()?;
        Ok(ResilientClient {
            endpoint,
            max_frame: proto::DEFAULT_MAX_FRAME,
            rng: policy.seed | 1,
            policy,
            conn: None,
            reconnects: 0,
            retries: 0,
        })
    }

    /// Override the frame size cap (must match the server's).
    pub fn with_max_frame(mut self, max: u64) -> ResilientClient {
        self.max_frame = max;
        self
    }

    /// Reconnections performed so far.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Calls that needed at least one retry so far.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64* — deterministic jitter, no dependencies.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Backoff for retry `attempt` (0-based): `base_backoff × 2^attempt`
    /// capped at `max_backoff`, clamped to ≥1 ms, jittered uniformly over
    /// `[exp/2, exp]`, then floored at the server's latest retry-after
    /// hint. The clamp happens before the jitter: a zero or
    /// sub-millisecond base truncates `exp_ms` to 0, and without it every
    /// retry would sleep 0 ms and hot-spin against the server.
    fn backoff(&mut self, attempt: u32, floor_ms: u64) -> Duration {
        let exp = self
            .policy
            .base_backoff
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.policy.max_backoff);
        let exp_ms = (exp.as_millis() as u64).max(1);
        let lo = exp_ms - exp_ms / 2;
        let jittered = lo + self.next_rand() % (exp_ms - lo + 1);
        Duration::from_millis(jittered.max(floor_ms))
    }

    fn dial(&mut self) -> Result<(), ServeError> {
        let conn: Box<dyn Conn> = match &self.endpoint {
            Endpoint::Tcp(addr) => {
                let s = TcpStream::connect(addr).map_err(ServeError::Io)?;
                let _ = s.set_nodelay(true);
                let _ = s.set_read_timeout(Some(POLL_TICK));
                Box::new(s)
            }
            #[cfg(unix)]
            Endpoint::Uds(path) => {
                let s = std::os::unix::net::UnixStream::connect(path).map_err(ServeError::Io)?;
                let _ = s.set_read_timeout(Some(POLL_TICK));
                Box::new(s)
            }
        };
        self.conn = Some(conn);
        self.reconnects += 1;
        Ok(())
    }

    /// Remaining budget, or a typed deadline error once it is spent.
    fn remaining(&self, started: Instant) -> Result<Option<Duration>, ServeError> {
        match self.policy.call_deadline {
            None => Ok(None),
            Some(d) => match d.checked_sub(started.elapsed()) {
                Some(rem) if !rem.is_zero() => Ok(Some(rem)),
                _ => Err(ServeError::Deadline {
                    deadline_ms: d.as_millis() as u64,
                }),
            },
        }
    }

    /// One wire round trip on the current connection. Any error leaves the
    /// connection dropped so the next attempt redials.
    fn round_trip(&mut self, req: &Request, started: Instant) -> Result<Response, ServeError> {
        if self.conn.is_none() {
            self.dial()?;
        }
        let result = (|| {
            let conn = self.conn.as_mut().expect("dialed above");
            proto::write_frame(conn, &req.encode(), self.max_frame)?;
            loop {
                match proto::read_frame_stall_bounded(
                    conn,
                    self.max_frame,
                    Some(self.policy.frame_stall),
                )? {
                    FrameEvent::Frame(payload) => return Ok(Response::decode(&payload)?),
                    FrameEvent::Eof => {
                        return Err(ServeError::Io(std::io::ErrorKind::ConnectionReset.into()))
                    }
                    FrameEvent::Idle => {
                        // Deadline check per poll tick while waiting.
                        if let Some(d) = self.policy.call_deadline {
                            if started.elapsed() >= d {
                                return Err(ServeError::Deadline {
                                    deadline_ms: d.as_millis() as u64,
                                });
                            }
                        }
                    }
                }
            }
        })();
        if result.is_err() {
            // Never reuse a stream in an unknown framing state.
            self.conn = None;
        }
        result
    }

    /// Run one simulation to completion: reconnect, back off (honoring the
    /// server's `Busy` hint), and re-issue through transport failures and
    /// server-side deadline rejections, within the attempt budget and the
    /// overall call deadline. Non-transient answers (`Draining`, typed
    /// `Error`s) fail immediately.
    pub fn simulate(
        &mut self,
        req: SimRequest,
    ) -> Result<(OutcomeSummary, ServedFrom), ServeError> {
        let started = Instant::now();
        let attempts = self.policy.max_attempts.max(1);
        let mut last = String::new();
        for attempt in 0..attempts {
            if attempt > 0 {
                self.retries += 1;
            }
            let mut floor_ms = 0;
            match self.round_trip(&Request::Simulate(req), started) {
                Ok(Response::Outcome { summary, served }) => return Ok((*summary, served)),
                Ok(Response::Busy { retry_after_ms, .. }) => {
                    floor_ms = retry_after_ms as u64;
                    last = format!("busy (retry-after {retry_after_ms} ms)");
                }
                Ok(Response::DeadlineExceeded {
                    deadline_ms,
                    elapsed_ms,
                }) => {
                    // The server gave up on this attempt, but a concurrent
                    // identical request may still finish and populate the
                    // cache — re-issuing is cheap and safe.
                    last =
                        format!("server deadline {deadline_ms} ms exceeded after {elapsed_ms} ms");
                }
                // `Draining`, typed `Error`s and anything else non-transient
                // fail the call immediately: retrying cannot change them.
                Ok(other) => {
                    return Err(ServeError::UnexpectedResponse(format!(
                        "simulate answered with {other:?}"
                    )));
                }
                Err(e @ ServeError::Deadline { .. }) => return Err(e),
                Err(e) => last = e.to_string(),
            }
            // Back off before the next attempt, never past the deadline.
            let mut pause = self.backoff(attempt, floor_ms);
            if let Some(rem) = self.remaining(started)? {
                pause = pause.min(rem);
            }
            std::thread::sleep(pause);
            self.remaining(started)?;
        }
        Err(ServeError::RetriesExhausted { attempts, last })
    }

    /// Liveness check with the same retry machinery.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        let started = Instant::now();
        match self.round_trip(&Request::Ping, started)? {
            Response::Pong => Ok(()),
            other => Err(ServeError::UnexpectedResponse(format!(
                "ping answered with {other:?}"
            ))),
        }
    }

    /// Fetch the server's metrics snapshot (single attempt — metrics are
    /// cheap and callers poll anyway).
    pub fn metrics(&mut self) -> Result<warden_obs::MetricsRegistry, ServeError> {
        let started = Instant::now();
        match self.round_trip(&Request::Metrics, started)? {
            Response::Metrics(reg) => Ok(reg),
            other => Err(ServeError::UnexpectedResponse(format!(
                "metrics answered with {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{MachinePreset, MachineSpec};
    use warden_coherence::ProtocolId;
    use warden_pbbs::{Bench, Scale};

    fn client_with(policy: RetryPolicy) -> ResilientClient {
        // The endpoint is never dialed by the backoff tests.
        ResilientClient::tcp("127.0.0.1:1", policy).expect("valid policy")
    }

    #[test]
    fn backoff_stays_within_half_to_full_exponential() {
        let base = 10u64;
        let mut c = client_with(RetryPolicy {
            base_backoff: Duration::from_millis(base),
            seed: 0xFEED,
            ..RetryPolicy::default()
        });
        for attempt in 0..10u32 {
            let exp = (base << attempt.min(16)).min(500);
            let lo = exp - exp / 2;
            for _ in 0..100 {
                let b = c.backoff(attempt, 0).as_millis() as u64;
                assert!(
                    (lo..=exp).contains(&b),
                    "attempt {attempt}: backoff {b} ms outside [{lo}, {exp}]"
                );
            }
        }
    }

    #[test]
    fn backoff_schedule_is_deterministic_per_seed() {
        let policy = RetryPolicy {
            seed: 42,
            ..RetryPolicy::default()
        };
        let mut a = client_with(policy.clone());
        let mut b = client_with(policy);
        for attempt in 0..6 {
            assert_eq!(a.backoff(attempt, 0), b.backoff(attempt, 0));
        }
    }

    #[test]
    fn zero_base_backoff_still_sleeps_at_least_one_millisecond() {
        // Regression: `exp_ms` used to truncate to 0 for a zero or
        // sub-millisecond base, making every retry sleep 0 ms (a hot
        // spin). The clamp guarantees ≥1 ms before jittering.
        for base in [
            Duration::ZERO,
            Duration::from_micros(1),
            Duration::from_micros(900),
        ] {
            let mut c = client_with(RetryPolicy {
                base_backoff: base,
                max_backoff: Duration::from_millis(500),
                seed: 7,
                ..RetryPolicy::default()
            });
            for attempt in 0..8 {
                let b = c.backoff(attempt, 0);
                assert!(
                    b >= Duration::from_millis(1),
                    "base {base:?}, attempt {attempt}: backoff {b:?} is a hot spin"
                );
            }
        }
    }

    #[test]
    fn busy_hint_floors_the_backoff() {
        let mut c = client_with(RetryPolicy {
            base_backoff: Duration::from_millis(2),
            seed: 3,
            ..RetryPolicy::default()
        });
        for _ in 0..50 {
            assert!(c.backoff(0, 40) >= Duration::from_millis(40));
        }
    }

    #[test]
    fn nonsensical_policies_are_rejected_at_construction() {
        let cases = [
            RetryPolicy {
                max_attempts: 0,
                ..RetryPolicy::default()
            },
            RetryPolicy {
                base_backoff: Duration::from_millis(100),
                max_backoff: Duration::from_millis(10),
                ..RetryPolicy::default()
            },
            RetryPolicy {
                frame_stall: Duration::ZERO,
                ..RetryPolicy::default()
            },
            RetryPolicy {
                call_deadline: Some(Duration::ZERO),
                ..RetryPolicy::default()
            },
        ];
        for policy in cases {
            let err = ResilientClient::tcp("127.0.0.1:1", policy.clone())
                .err()
                .unwrap_or_else(|| panic!("policy {policy:?} must be rejected"));
            assert!(matches!(err, ServeError::Config(_)));
        }
        // A zero base is VALID (the backoff clamp handles it); only an
        // inconsistent max/base pair is not.
        assert!(RetryPolicy {
            base_backoff: Duration::ZERO,
            ..RetryPolicy::default()
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn zero_base_retry_storm_takes_real_wall_time() {
        // A server that always answers Busy with no retry-after hint, the
        // worst case for the old bug: floor 0 + zero base = 0 ms sleeps,
        // i.e. the whole retry budget burned in a busy loop. With the
        // clamp, 6 attempts must spend ≥6 ms asleep.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        std::thread::spawn(move || {
            if let Ok((mut stream, _)) = listener.accept() {
                loop {
                    match proto::read_frame(&mut stream, proto::DEFAULT_MAX_FRAME) {
                        Ok(FrameEvent::Frame(_)) => {
                            let busy = Response::Busy {
                                queue_len: 1,
                                queue_cap: 1,
                                retry_after_ms: 0,
                            };
                            if proto::write_frame(
                                &mut stream,
                                &busy.encode(),
                                proto::DEFAULT_MAX_FRAME,
                            )
                            .is_err()
                            {
                                return;
                            }
                        }
                        _ => return,
                    }
                }
            }
        });

        let attempts = 6u32;
        let mut client = ResilientClient::tcp(
            addr,
            RetryPolicy {
                max_attempts: attempts,
                base_backoff: Duration::ZERO,
                max_backoff: Duration::ZERO,
                call_deadline: None,
                frame_stall: Duration::from_secs(2),
                seed: 5,
            },
        )
        .expect("valid policy");
        let req = SimRequest {
            bench: Bench::Fib,
            scale: Scale::Tiny,
            machine: MachineSpec::new(MachinePreset::DualSocket).with_cores(2),
            protocol: ProtocolId::Warden,
            check: false,
        };
        let started = Instant::now();
        let err = client.simulate(req).expect_err("server only says Busy");
        let elapsed = started.elapsed();
        assert!(matches!(err, ServeError::RetriesExhausted { .. }));
        assert!(
            elapsed >= Duration::from_millis(attempts as u64),
            "retry storm completed in {elapsed:?} — backoff sleeps collapsed to zero"
        );
    }
}
