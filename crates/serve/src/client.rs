//! A blocking client for the `warden-serve` wire protocol.
//!
//! Generic over any `Read + Write` stream, so the same request/response
//! logic drives TCP sockets, Unix sockets and in-memory test doubles.
//! Client sockets stay fully blocking — simulations take real time, and
//! [`proto::read_frame`] only reports [`FrameEvent::Idle`] on a read
//! timeout, which a blocking socket never produces.

use crate::error::ServeError;
use crate::proto::{self, FrameEvent, OutcomeSummary, Request, Response, SimRequest};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A connected client.
pub struct Client<S> {
    stream: S,
    max_frame: u64,
}

impl Client<TcpStream> {
    /// Connect over TCP.
    pub fn connect(addr: &str) -> Result<Client<TcpStream>, ServeError> {
        let stream = TcpStream::connect(addr).map_err(ServeError::Io)?;
        let _ = stream.set_nodelay(true);
        Ok(Client::over(stream))
    }
}

#[cfg(unix)]
impl Client<std::os::unix::net::UnixStream> {
    /// Connect over a Unix socket.
    pub fn connect_uds(
        path: &std::path::Path,
    ) -> Result<Client<std::os::unix::net::UnixStream>, ServeError> {
        let stream = std::os::unix::net::UnixStream::connect(path).map_err(ServeError::Io)?;
        Ok(Client::over(stream))
    }
}

impl<S: Read + Write> Client<S> {
    /// Wrap an already-connected stream.
    pub fn over(stream: S) -> Client<S> {
        Client {
            stream,
            max_frame: proto::DEFAULT_MAX_FRAME,
        }
    }

    /// Override the frame size cap (must match the server's).
    pub fn with_max_frame(mut self, max: u64) -> Client<S> {
        self.max_frame = max;
        self
    }

    /// Send one request and wait for its response.
    pub fn call(&mut self, req: &Request) -> Result<Response, ServeError> {
        proto::write_frame(&mut self.stream, &req.encode(), self.max_frame)?;
        loop {
            match proto::read_frame(&mut self.stream, self.max_frame)? {
                FrameEvent::Frame(payload) => return Ok(Response::decode(&payload)?),
                FrameEvent::Idle => continue,
                FrameEvent::Eof => {
                    return Err(ServeError::UnexpectedResponse(
                        "server closed the connection before replying".to_string(),
                    ))
                }
            }
        }
    }

    /// Liveness check: send `Ping`, expect `Pong`.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ServeError::UnexpectedResponse(format!(
                "ping answered with {other:?}"
            ))),
        }
    }

    /// Fetch the server's metrics snapshot.
    pub fn metrics(&mut self) -> Result<warden_obs::MetricsRegistry, ServeError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(reg) => Ok(reg),
            other => Err(ServeError::UnexpectedResponse(format!(
                "metrics answered with {other:?}"
            ))),
        }
    }

    /// Run one simulation, retrying `Busy` with a linear backoff for up to
    /// `tries` attempts. Returns the summary and whether the cache (or a
    /// coalesced in-flight computation) served it. `Draining`, `Error` and
    /// exhausted retries are typed failures.
    pub fn simulate(
        &mut self,
        req: SimRequest,
        tries: usize,
    ) -> Result<(OutcomeSummary, bool), ServeError> {
        let mut last_busy = None;
        for attempt in 0..tries.max(1) {
            match self.call(&Request::Simulate(req))? {
                Response::Outcome { summary, cache_hit } => return Ok((*summary, cache_hit)),
                Response::Busy {
                    queue_len,
                    queue_cap,
                } => {
                    last_busy = Some((queue_len, queue_cap));
                    std::thread::sleep(Duration::from_millis(5 * (attempt as u64 + 1)));
                }
                other => {
                    return Err(ServeError::UnexpectedResponse(format!(
                        "simulate answered with {other:?}"
                    )))
                }
            }
        }
        let (len, cap) = last_busy.unwrap_or((0, 0));
        Err(ServeError::UnexpectedResponse(format!(
            "server still busy after {tries} attempts (queue {len}/{cap})"
        )))
    }
}
