//! Integration drills for the crash-safe disk tier: round trips across a
//! process "restart" (drop + reopen), fsck sweeping and quarantine,
//! budget-driven eviction, and graceful degradation under every injected
//! storage fault — torn writes, `ENOSPC`, corrupt reads, and crashes on
//! either side of the rename. The invariant throughout: the tier answers
//! hit-or-miss and bumps a typed counter; it never panics and never
//! surfaces an error the serving path would have to turn into a failed
//! request.

use std::path::PathBuf;
use std::sync::Arc;
use warden_coherence::ProtocolId;
use warden_serve::{
    CacheKey, DiskTier, DiskTierConfig, FaultyStorage, OutcomeSummary, RealStorage,
    StorageFaultPlan,
};
use warden_sim::SimStats;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("warden-disk-tier-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn key(tag: u64) -> CacheKey {
    CacheKey {
        options_fp: tag,
        trace_fp: tag.wrapping_mul(3),
        machine_fp: tag.wrapping_mul(5),
        protocol: (tag % 3) as u8,
    }
}

fn summary(tag: u64) -> OutcomeSummary {
    OutcomeSummary {
        protocol: ProtocolId::Warden,
        machine: format!("machine-{tag}"),
        stats: SimStats {
            cycles: tag,
            instructions: tag * 2,
            ..SimStats::default()
        },
        memory_image_digest: tag ^ 0xABCD,
        region_peak: tag + 7,
        outcome_digest: tag ^ 0x5A5A,
    }
}

fn open_real(dir: &PathBuf) -> DiskTier {
    DiskTier::open(DiskTierConfig::at(dir), Arc::new(RealStorage)).expect("tier opens")
}

fn open_faulty(dir: &PathBuf, plan: StorageFaultPlan) -> DiskTier {
    DiskTier::open(
        DiskTierConfig::at(dir),
        Arc::new(FaultyStorage::new(RealStorage, plan)),
    )
    .expect("tier opens")
}

/// A plan that injects nothing except the one listed fault.
fn only(f: impl FnOnce(&mut StorageFaultPlan)) -> StorageFaultPlan {
    let mut plan = StorageFaultPlan {
        torn_write_prob: 0.0,
        enospc_prob: 0.0,
        corrupt_read_prob: 0.0,
        crash_before_rename_prob: 0.0,
        crash_after_rename_prob: 0.0,
        ..StorageFaultPlan::default()
    };
    f(&mut plan);
    plan
}

#[test]
fn results_and_checkpoints_survive_a_reopen_bit_identically() {
    let dir = scratch("reopen");
    {
        let tier = open_real(&dir);
        tier.put_result(&key(1), &summary(1), 1_000);
        tier.put_checkpoint(&key(2), 500, b"frame-bytes");
        assert_eq!(tier.stats().writes, 2);
    }
    // The process is gone; a new one opens the same directory.
    let tier = open_real(&dir);
    assert_eq!(tier.len(), 2, "fsck admitted both entries");
    let (summary_back, compute_us) = tier.result(&key(1)).expect("result survives");
    assert_eq!(summary_back, summary(1));
    assert_eq!(compute_us, 1_000);
    let (steps, frame) = tier.checkpoint(&key(2)).expect("checkpoint survives");
    assert_eq!((steps, frame.as_slice()), (500, &b"frame-bytes"[..]));
    assert_eq!(tier.stats().quarantined, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_finished_result_discards_the_checkpoint_it_outran() {
    let dir = scratch("discard");
    let tier = open_real(&dir);
    tier.put_checkpoint(&key(9), 100, b"prefix");
    assert!(tier.checkpoint(&key(9)).is_some());
    tier.put_result(&key(9), &summary(9), 42);
    assert!(
        tier.checkpoint(&key(9)).is_none(),
        "the frame is a strict prefix of completed work"
    );
    assert!(tier.result(&key(9)).is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fsck_sweeps_orphaned_temp_files_and_quarantines_damage() {
    let dir = scratch("fsck");
    {
        let tier = open_real(&dir);
        tier.put_result(&key(1), &summary(1), 10);
        tier.put_result(&key(2), &summary(2), 10);
    }
    // A crash mid-write leaves a temp orphan; bit rot truncates one entry;
    // a stray file squats under an entry name it doesn't hash to.
    std::fs::write(dir.join("r-0000000000000abc.ent.tmp"), b"torn").unwrap();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "ent"))
        .collect();
    entries.sort();
    let victim = &entries[0];
    let bytes = std::fs::read(victim).unwrap();
    std::fs::write(victim, &bytes[..bytes.len() / 2]).unwrap();
    std::fs::write(dir.join("r-00000000deadbeef.ent"), &bytes).unwrap();

    let tier = open_real(&dir);
    let stats = tier.stats();
    assert_eq!(
        stats.quarantined, 2,
        "the truncated entry and the misnamed entry are set aside: {stats:?}"
    );
    assert_eq!(tier.len(), 1, "the intact entry is admitted");
    assert!(
        !dir.join("r-0000000000000abc.ent.tmp").exists(),
        "temp orphans are swept"
    );
    assert!(
        std::fs::read_dir(dir.join("quarantine")).unwrap().count() >= 2,
        "damage is preserved as evidence, not deleted"
    );
    // One of the two keys still hits; the truncated one misses and is
    // recomputed by the caller — never served wrong.
    let hits = [key(1), key(2)]
        .iter()
        .filter(|k| tier.result(k).is_some())
        .count();
    assert_eq!(hits, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn the_byte_budget_evicts_cheapest_first_and_never_overshoots() {
    let dir = scratch("budget");
    let probe = {
        let tier = open_real(&dir);
        tier.put_result(&key(1), &summary(1), 1);
        tier.stats().resident_bytes
    };
    let _ = std::fs::remove_dir_all(&dir);

    // Room for roughly two entries. Insert three with ascending value:
    // the cheapest (lowest compute time) must be the one evicted.
    let budget = probe * 2 + probe / 2;
    let tier = DiskTier::open(
        DiskTierConfig {
            budget_bytes: budget,
            ..DiskTierConfig::at(&dir)
        },
        Arc::new(RealStorage),
    )
    .expect("tier opens");
    tier.put_result(&key(1), &summary(1), 10);
    tier.put_result(&key(2), &summary(2), 10_000);
    tier.put_result(&key(3), &summary(3), 10_000_000);
    let stats = tier.stats();
    assert!(
        stats.resident_bytes <= budget,
        "residency within budget: {stats:?}"
    );
    assert!(stats.evictions >= 1, "{stats:?}");
    assert!(tier.result(&key(1)).is_none(), "the cheap entry went first");
    assert!(tier.result(&key(3)).is_some(), "the valuable entry stayed");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn enospc_degrades_with_a_typed_counter_and_keeps_serving_misses() {
    let dir = scratch("enospc");
    let tier = open_faulty(&dir, only(|p| p.enospc_prob = 1.0));
    tier.put_result(&key(1), &summary(1), 10);
    tier.put_checkpoint(&key(1), 100, b"frame");
    let stats = tier.stats();
    assert_eq!(stats.writes, 0, "{stats:?}");
    assert_eq!(stats.enospc_degraded, 2, "{stats:?}");
    assert!(tier.result(&key(1)).is_none(), "a clean miss, not an error");
    assert!(tier.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_writes_are_caught_on_read_and_quarantined() {
    let dir = scratch("torn");
    let tier = open_faulty(&dir, only(|p| p.torn_write_prob = 1.0));
    // The torn write *reports success* — exactly the lying-disk case — so
    // the entry is indexed; the checksum catches it on first read.
    tier.put_result(&key(1), &summary(1), 10);
    assert_eq!(tier.stats().writes, 1);
    assert!(tier.result(&key(1)).is_none());
    let stats = tier.stats();
    assert_eq!(stats.quarantined, 1, "{stats:?}");
    assert!(tier.result(&key(1)).is_none(), "stays a miss after that");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_reads_quarantine_instead_of_serving_flipped_bits() {
    let dir = scratch("corrupt-read");
    let tier = open_faulty(&dir, only(|p| p.corrupt_read_prob = 1.0));
    tier.put_result(&key(1), &summary(1), 10);
    assert!(
        tier.result(&key(1)).is_none(),
        "a flipped byte can never decode"
    );
    assert_eq!(tier.stats().quarantined, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_crash_mid_write_never_damages_the_old_entry() {
    let dir = scratch("crash-mid-write");
    {
        let tier = open_real(&dir);
        tier.put_result(&key(1), &summary(1), 10);
    }
    {
        // The process "crashes" before the rename while overwriting: the
        // write errors, the destination keeps the OLD bytes.
        let tier = open_faulty(&dir, only(|p| p.crash_before_rename_prob = 1.0));
        tier.put_result(&key(1), &summary(999), 10);
        let stats = tier.stats();
        assert_eq!(stats.writes, 0, "{stats:?}");
        assert_eq!(stats.write_errors, 1, "{stats:?}");
        let (back, _) = tier.result(&key(1)).expect("old entry intact");
        assert_eq!(back, summary(1), "never a mixture of old and new");
    }
    // The restart drill: reopen sweeps the orphaned temp file and still
    // serves the old entry bit-identically.
    let tier = open_real(&dir);
    assert_eq!(tier.stats().quarantined, 0);
    let (back, _) = tier.result(&key(1)).expect("old entry survives restart");
    assert_eq!(back, summary(1));
    assert!(std::fs::read_dir(&dir).unwrap().all(|e| !e
        .unwrap()
        .path()
        .to_string_lossy()
        .ends_with(".tmp")));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_crash_after_rename_is_already_durable() {
    let dir = scratch("crash-after");
    {
        let tier = open_faulty(&dir, only(|p| p.crash_after_rename_prob = 1.0));
        // The write lands, then the process "dies" before acknowledging:
        // the tier counts an error, but the bytes are durable.
        tier.put_result(&key(1), &summary(1), 10);
        assert_eq!(tier.stats().write_errors, 1);
    }
    let tier = open_real(&dir);
    let (back, _) = tier.result(&key(1)).expect("the rename made it durable");
    assert_eq!(back, summary(1));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn seeded_fault_storms_never_panic_and_never_serve_wrong_bytes() {
    for seed in 0..8u64 {
        let dir = scratch(&format!("storm-{seed}"));
        let plan = StorageFaultPlan {
            torn_write_prob: 0.2,
            enospc_prob: 0.2,
            corrupt_read_prob: 0.2,
            crash_before_rename_prob: 0.1,
            crash_after_rename_prob: 0.1,
            ..StorageFaultPlan::seeded(seed)
        };
        let tier = open_faulty(&dir, plan);
        for tag in 0..32u64 {
            tier.put_result(&key(tag), &summary(tag), tag + 1);
            if let Some((back, _)) = tier.result(&key(tag)) {
                assert_eq!(back, summary(tag), "a hit must be bit-identical");
            }
        }
        // Reopening after the storm must also never panic, and every
        // admitted entry must still verify.
        drop(tier);
        let tier = open_real(&dir);
        for tag in 0..32u64 {
            if let Some((back, _)) = tier.result(&key(tag)) {
                assert_eq!(back, summary(tag));
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
