//! Concurrency stress for the sharded single-flight cache: 32 threads
//! hammer a mix of hot keys (all threads collide) and cold keys (each
//! thread owns some), with a probe counter proving **exactly one** compute
//! ran per unique key, and every thread receiving the identical value.
//! A second scenario stresses the failure path: panicking leaders must
//! propagate to every waiter of that round, vacate the slot, and leave the
//! key computable afterwards.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use warden_serve::cache::{SingleFlight, Source};
use warden_serve::CacheKey;

const THREADS: usize = 32;
const ROUNDS: usize = 25;
const HOT_KEYS: u64 = 4;

fn key(n: u64) -> CacheKey {
    // Spread the fields so distinct logical keys differ in every component.
    CacheKey {
        options_fp: n.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        trace_fp: n ^ 0xdead_beef,
        machine_fp: n.rotate_left(17),
        protocol: (n % 3) as u8,
    }
}

#[test]
fn single_flight_under_32_thread_storm() {
    let cache: Arc<SingleFlight<CacheKey, u64>> = Arc::new(SingleFlight::new(8));
    // One probe counter per key, incremented inside the compute closure.
    let probes: Arc<Mutex<HashMap<u64, Arc<AtomicUsize>>>> = Arc::new(Mutex::new(HashMap::new()));
    let fresh_total = Arc::new(AtomicU64::new(0));
    let gate = Arc::new(Barrier::new(THREADS));

    let handles: Vec<_> = (0..THREADS)
        .map(|tid| {
            let cache = Arc::clone(&cache);
            let probes = Arc::clone(&probes);
            let fresh_total = Arc::clone(&fresh_total);
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                gate.wait();
                let mut got: Vec<(u64, u64)> = Vec::new();
                for round in 0..ROUNDS {
                    // Hot keys collide across every thread; cold keys are
                    // unique to (thread, round) so they always miss.
                    let hot = (round as u64) % HOT_KEYS;
                    let cold = 1_000 + (tid as u64) * ROUNDS as u64 + round as u64;
                    for logical in [hot, cold] {
                        let probe = Arc::clone(
                            probes
                                .lock()
                                .unwrap()
                                .entry(logical)
                                .or_insert_with(|| Arc::new(AtomicUsize::new(0))),
                        );
                        let (v, src) = cache
                            .get_or_compute(key(logical), || {
                                probe.fetch_add(1, Ordering::SeqCst);
                                // Widen the race window so coalescing
                                // actually happens on the hot keys.
                                std::thread::yield_now();
                                Ok(logical.wrapping_mul(31).wrapping_add(7))
                            })
                            .expect("compute never fails here");
                        if src == Source::Fresh {
                            fresh_total.fetch_add(1, Ordering::SeqCst);
                        }
                        got.push((logical, v));
                    }
                }
                got
            })
        })
        .collect();

    let mut by_key: HashMap<u64, u64> = HashMap::new();
    for h in handles {
        for (logical, v) in h.join().expect("no stress thread panics") {
            // Every response for a key is identical across all threads.
            let prev = by_key.insert(logical, v);
            if let Some(p) = prev {
                assert_eq!(p, v, "key {logical} answered two different values");
            }
            assert_eq!(v, logical.wrapping_mul(31).wrapping_add(7));
        }
    }

    let unique_keys = HOT_KEYS as usize + THREADS * ROUNDS;
    assert_eq!(by_key.len(), unique_keys);
    // The single-flight guarantee, via the probe counters: every unique key
    // computed exactly once, no matter how many threads collided on it.
    let probes = probes.lock().unwrap();
    assert_eq!(probes.len(), unique_keys);
    for (logical, probe) in probes.iter() {
        assert_eq!(
            probe.load(Ordering::SeqCst),
            1,
            "key {logical} computed more than once"
        );
    }
    assert_eq!(fresh_total.load(Ordering::SeqCst), unique_keys as u64);

    let stats = cache.stats();
    assert_eq!(stats.misses, unique_keys as u64);
    assert_eq!(stats.failures, 0);
    // Each (thread, round) pair issued 2 requests; everything that wasn't
    // a fresh compute was served from the cache or coalesced.
    let total = (THREADS * ROUNDS * 2) as u64;
    assert_eq!(stats.hits + stats.coalesced + stats.misses, total);
    assert!(
        stats.hits + stats.coalesced > 0,
        "a hot-key storm must produce cache-served responses"
    );
    assert_eq!(cache.len(), unique_keys);
}

#[test]
fn panicking_leaders_never_strand_waiters() {
    const ATTACKERS: usize = 16;
    let cache: Arc<SingleFlight<u64, u64>> = Arc::new(SingleFlight::new(4));
    let probe = Arc::new(AtomicUsize::new(0));
    let gate = Arc::new(Barrier::new(ATTACKERS));

    // Every thread races on ONE key whose compute panics the first two
    // times it runs. No waiter may hang; eventually the value lands.
    let handles: Vec<_> = (0..ATTACKERS)
        .map(|_| {
            let cache = Arc::clone(&cache);
            let probe = Arc::clone(&probe);
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                gate.wait();
                loop {
                    let attempt = {
                        let probe = Arc::clone(&probe);
                        move || {
                            let n = probe.fetch_add(1, Ordering::SeqCst);
                            if n < 2 {
                                panic!("induced failure #{n}");
                            }
                            Ok(99)
                        }
                    };
                    match cache.get_or_compute(7, attempt) {
                        Ok((v, _)) => return v,
                        Err(msg) => assert!(msg.contains("induced failure"), "{msg}"),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().expect("waiters must not hang or panic"), 99);
    }
    // The two induced panics each vacated the slot; the third compute won.
    assert_eq!(probe.load(Ordering::SeqCst), 3);
    let stats = cache.stats();
    assert_eq!(stats.failures, 2);
    assert_eq!(cache.len(), 1);
}

// ---------------------------------------------------------------------------
// Property tests of the byte budget.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exact byte accounting under arbitrary insert/evict/coalesce
    /// interleavings: two threads race the same op sequence (so computes
    /// coalesce unpredictably), and afterwards every byte a compute ever
    /// produced is either still resident or counted as evicted — while
    /// residency (and its peak) never exceeded the budget, not even
    /// transiently.
    #[test]
    fn byte_accounting_is_exact_under_interleavings(
        budget in 16u64..256,
        ops in proptest::collection::vec((0u64..16, 1u64..96), 1..80),
    ) {
        let cache: Arc<SingleFlight<u64, Vec<u8>>> =
            Arc::new(SingleFlight::bounded(1, budget, |v: &Vec<u8>| v.len() as u64));
        let produced = Arc::new(AtomicU64::new(0));
        let ops: Arc<[(u64, u64)]> = ops.into();
        let gate = Arc::new(Barrier::new(2));

        let workers: Vec<_> = (0..2)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let produced = Arc::clone(&produced);
                let ops = Arc::clone(&ops);
                let gate = Arc::clone(&gate);
                std::thread::spawn(move || {
                    gate.wait();
                    for &(key, size) in ops.iter() {
                        let produced = Arc::clone(&produced);
                        let (v, _) = cache
                            .get_or_compute(key, move || {
                                produced.fetch_add(size, Ordering::SeqCst);
                                Ok(vec![key as u8; size as usize])
                            })
                            .expect("computes never fail here");
                        // Whoever computed it, the value is the key's.
                        prop_assert_eq!(v.first().copied(), Some(key as u8));
                        let s = cache.stats();
                        prop_assert!(
                            s.resident_bytes <= budget,
                            "resident {} over budget {budget}", s.resident_bytes
                        );
                        prop_assert!(
                            s.resident_peak <= budget,
                            "peak {} over budget {budget}", s.resident_peak
                        );
                    }
                    Ok(())
                })
            })
            .collect();
        for w in workers {
            w.join().expect("no accounting thread panics")?;
        }

        let s = cache.stats();
        prop_assert_eq!(
            s.resident_bytes + s.evicted_bytes,
            produced.load(Ordering::SeqCst),
            "bytes leaked: resident {} + evicted {} != produced; stats {:?}",
            s.resident_bytes, s.evicted_bytes, s
        );
        prop_assert_eq!(s.resident_bytes, cache.resident_bytes());
        prop_assert!(s.resident_peak <= budget);
        prop_assert_eq!(s.failures, 0);
        prop_assert_eq!(s.cancelled, 0);
    }

    /// An in-flight entry survives arbitrary eviction pressure: while one
    /// leader is pinned mid-compute, a storm of other keys overflows the
    /// budget many times over; the pending flight must keep its slot (its
    /// eventual waiters coalesce, nothing recomputes) and the accounting
    /// still balances to the byte.
    #[test]
    fn in_flight_entries_survive_eviction_pressure(
        budget in 32u64..128,
        sizes in proptest::collection::vec(1u64..64, 4..40),
        pinned_size in 1u64..24,
    ) {
        let cache: Arc<SingleFlight<u64, Vec<u8>>> =
            Arc::new(SingleFlight::bounded(1, budget, |v: &Vec<u8>| v.len() as u64));
        const PINNED: u64 = u64::MAX; // outside the storm's key space
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let (started_tx, started_rx) = std::sync::mpsc::channel::<()>();

        let leader = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                cache.get_or_compute(PINNED, move || {
                    started_tx.send(()).expect("test alive");
                    release_rx.recv().expect("released");
                    Ok(vec![7u8; pinned_size as usize])
                })
            })
        };
        started_rx.recv().expect("leader entered its compute");

        // The storm: total bytes far beyond the budget, forcing evictions
        // while the pinned flight is mid-compute.
        let mut produced = pinned_size;
        for (i, &size) in sizes.iter().enumerate() {
            produced += size;
            cache
                .get_or_compute(i as u64, move || Ok(vec![i as u8; size as usize]))
                .expect("storm computes never fail");
        }

        release_tx.send(()).expect("leader still waiting");
        let (v, src) = leader
            .join()
            .expect("leader thread survives")
            .expect("pinned compute succeeds");
        prop_assert_eq!(v.len() as u64, pinned_size);
        prop_assert_eq!(src, Source::Fresh);

        // The pinned entry kept its slot through the storm: a second
        // lookup is answered from cache, its compute closure never runs.
        let (again, src) = cache
            .get_or_compute(PINNED, || panic!("the pinned entry was evicted"))
            .expect("cache-served");
        prop_assert_eq!(again.len() as u64, pinned_size);
        prop_assert_eq!(src, Source::Cached);

        let s = cache.stats();
        prop_assert_eq!(s.resident_bytes + s.evicted_bytes, produced);
        prop_assert!(s.resident_peak <= budget);
    }
}

proptest! {
    // Each case spins ~10 ms to make one entry's measured compute cost
    // unambiguous, so keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Eviction order respects the cost weighting (compute time × bytes):
    /// among same-sized entries, the one that was expensive to compute
    /// outlives cheap ones when the budget forces an eviction.
    #[test]
    fn eviction_prefers_cheap_entries_over_expensive_ones(
        cheap_count in 2u64..5,
        size in 6u64..20,
    ) {
        // Budget fits the expensive entry plus every cheap one exactly;
        // one more insert must evict exactly one resident entry.
        let budget = (cheap_count + 1) * size;
        let cache: SingleFlight<u64, Vec<u8>> =
            SingleFlight::bounded(1, budget, |v: &Vec<u8>| v.len() as u64);

        const EXPENSIVE: u64 = 100;
        cache
            .get_or_compute(EXPENSIVE, || {
                // Burn measurable compute time; the weight becomes
                // ~10'000 µs × size, orders of magnitude above the cheap
                // entries' sub-millisecond computes.
                let until = std::time::Instant::now() + std::time::Duration::from_millis(10);
                while std::time::Instant::now() < until {
                    std::hint::spin_loop();
                }
                Ok(vec![0xEE; size as usize])
            })
            .expect("expensive compute");
        for k in 0..cheap_count {
            cache
                .get_or_compute(k, move || Ok(vec![k as u8; size as usize]))
                .expect("cheap compute");
        }
        prop_assert_eq!(cache.stats().evictions, 0, "everything fits so far");

        // The trigger: over budget by exactly one entry.
        cache
            .get_or_compute(200, move || Ok(vec![0x77; size as usize]))
            .expect("trigger compute");

        let s = cache.stats();
        prop_assert_eq!(s.evictions, 1);
        prop_assert_eq!(s.evicted_bytes, size);
        prop_assert!(s.resident_bytes <= budget);

        // The expensive entry survived — a cheap one paid for the trigger.
        let (v, src) = cache
            .get_or_compute(EXPENSIVE, || panic!("the expensive entry was evicted first"))
            .expect("cache-served");
        prop_assert_eq!(v.len() as u64, size);
        prop_assert_eq!(src, Source::Cached);
    }
}
