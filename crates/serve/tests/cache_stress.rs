//! Concurrency stress for the sharded single-flight cache: 32 threads
//! hammer a mix of hot keys (all threads collide) and cold keys (each
//! thread owns some), with a probe counter proving **exactly one** compute
//! ran per unique key, and every thread receiving the identical value.
//! A second scenario stresses the failure path: panicking leaders must
//! propagate to every waiter of that round, vacate the slot, and leave the
//! key computable afterwards.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use warden_serve::cache::{SingleFlight, Source};
use warden_serve::CacheKey;

const THREADS: usize = 32;
const ROUNDS: usize = 25;
const HOT_KEYS: u64 = 4;

fn key(n: u64) -> CacheKey {
    // Spread the fields so distinct logical keys differ in every component.
    CacheKey {
        options_fp: n.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        trace_fp: n ^ 0xdead_beef,
        machine_fp: n.rotate_left(17),
        protocol: (n % 3) as u8,
    }
}

#[test]
fn single_flight_under_32_thread_storm() {
    let cache: Arc<SingleFlight<CacheKey, u64>> = Arc::new(SingleFlight::new(8));
    // One probe counter per key, incremented inside the compute closure.
    let probes: Arc<Mutex<HashMap<u64, Arc<AtomicUsize>>>> = Arc::new(Mutex::new(HashMap::new()));
    let fresh_total = Arc::new(AtomicU64::new(0));
    let gate = Arc::new(Barrier::new(THREADS));

    let handles: Vec<_> = (0..THREADS)
        .map(|tid| {
            let cache = Arc::clone(&cache);
            let probes = Arc::clone(&probes);
            let fresh_total = Arc::clone(&fresh_total);
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                gate.wait();
                let mut got: Vec<(u64, u64)> = Vec::new();
                for round in 0..ROUNDS {
                    // Hot keys collide across every thread; cold keys are
                    // unique to (thread, round) so they always miss.
                    let hot = (round as u64) % HOT_KEYS;
                    let cold = 1_000 + (tid as u64) * ROUNDS as u64 + round as u64;
                    for logical in [hot, cold] {
                        let probe = Arc::clone(
                            probes
                                .lock()
                                .unwrap()
                                .entry(logical)
                                .or_insert_with(|| Arc::new(AtomicUsize::new(0))),
                        );
                        let (v, src) = cache
                            .get_or_compute(key(logical), || {
                                probe.fetch_add(1, Ordering::SeqCst);
                                // Widen the race window so coalescing
                                // actually happens on the hot keys.
                                std::thread::yield_now();
                                Ok(logical.wrapping_mul(31).wrapping_add(7))
                            })
                            .expect("compute never fails here");
                        if src == Source::Fresh {
                            fresh_total.fetch_add(1, Ordering::SeqCst);
                        }
                        got.push((logical, v));
                    }
                }
                got
            })
        })
        .collect();

    let mut by_key: HashMap<u64, u64> = HashMap::new();
    for h in handles {
        for (logical, v) in h.join().expect("no stress thread panics") {
            // Every response for a key is identical across all threads.
            let prev = by_key.insert(logical, v);
            if let Some(p) = prev {
                assert_eq!(p, v, "key {logical} answered two different values");
            }
            assert_eq!(v, logical.wrapping_mul(31).wrapping_add(7));
        }
    }

    let unique_keys = HOT_KEYS as usize + THREADS * ROUNDS;
    assert_eq!(by_key.len(), unique_keys);
    // The single-flight guarantee, via the probe counters: every unique key
    // computed exactly once, no matter how many threads collided on it.
    let probes = probes.lock().unwrap();
    assert_eq!(probes.len(), unique_keys);
    for (logical, probe) in probes.iter() {
        assert_eq!(
            probe.load(Ordering::SeqCst),
            1,
            "key {logical} computed more than once"
        );
    }
    assert_eq!(fresh_total.load(Ordering::SeqCst), unique_keys as u64);

    let stats = cache.stats();
    assert_eq!(stats.misses, unique_keys as u64);
    assert_eq!(stats.failures, 0);
    // Each (thread, round) pair issued 2 requests; everything that wasn't
    // a fresh compute was served from the cache or coalesced.
    let total = (THREADS * ROUNDS * 2) as u64;
    assert_eq!(stats.hits + stats.coalesced + stats.misses, total);
    assert!(
        stats.hits + stats.coalesced > 0,
        "a hot-key storm must produce cache-served responses"
    );
    assert_eq!(cache.len(), unique_keys);
}

#[test]
fn panicking_leaders_never_strand_waiters() {
    const ATTACKERS: usize = 16;
    let cache: Arc<SingleFlight<u64, u64>> = Arc::new(SingleFlight::new(4));
    let probe = Arc::new(AtomicUsize::new(0));
    let gate = Arc::new(Barrier::new(ATTACKERS));

    // Every thread races on ONE key whose compute panics the first two
    // times it runs. No waiter may hang; eventually the value lands.
    let handles: Vec<_> = (0..ATTACKERS)
        .map(|_| {
            let cache = Arc::clone(&cache);
            let probe = Arc::clone(&probe);
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                gate.wait();
                loop {
                    let attempt = {
                        let probe = Arc::clone(&probe);
                        move || {
                            let n = probe.fetch_add(1, Ordering::SeqCst);
                            if n < 2 {
                                panic!("induced failure #{n}");
                            }
                            Ok(99)
                        }
                    };
                    match cache.get_or_compute(7, attempt) {
                        Ok((v, _)) => return v,
                        Err(msg) => assert!(msg.contains("induced failure"), "{msg}"),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().expect("waiters must not hang or panic"), 99);
    }
    // The two induced panics each vacated the slot; the third compute won.
    assert_eq!(probe.load(Ordering::SeqCst), 3);
    let stats = cache.stats();
    assert_eq!(stats.failures, 2);
    assert_eq!(cache.len(), 1);
}
