//! The timing replay engine: schedules a captured fork-join DAG onto
//! simulated cores with work stealing, drives every memory event through the
//! coherence system, and measures cycles, traffic and energy.
//!
//! The engine is *access-atomic and clock-ordered*: at every step the core
//! with the smallest local clock executes its next event, so cross-core
//! interactions (steals, invalidations, reconciliations) happen in a
//! deterministic global order given the seed.
//!
//! The engine runs in one of two modes: the one-shot helpers
//! ([`simulate`], [`simulate_with_options`], [`try_simulate`]) replay a
//! whole trace and return the [`SimOutcome`], while [`SimEngine`] exposes
//! the same replay one scheduler step at a time so a run can be paused,
//! snapshotted to a crash-safe checkpoint (see [`crate::checkpoint`]) and
//! resumed bit-identically.

use crate::cancel::CancelToken;
use crate::config::MachineConfig;
use crate::energy::{energy_of, EnergyBreakdown, EnergyParams};
use crate::error::SimError;
use crate::faults::{FaultInjector, FaultPlan};
use crate::lanes::{LaneReport, LaneSet};
use crate::obs::{timed, ObsRecorder, ObsReport};
use crate::stats::SimStats;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;
use warden_coherence::{AccessKind, CoherenceSystem, InvariantViolation, ProtocolId, RegionId};
use warden_mem::codec::{CodecError, Decoder, Encoder};
use warden_mem::Memory;
use warden_rt::{Event, TaskId, TraceProgram};

/// The result of one replay.
#[derive(Clone, Debug)]
pub struct SimOutcome {
    /// ProtocolId the machine ran.
    pub protocol: ProtocolId,
    /// Machine name (from [`MachineConfig`]).
    pub machine: String,
    /// All measurements.
    pub stats: SimStats,
    /// Energy computed from the measurements.
    pub energy: EnergyBreakdown,
    /// Digest of the final memory image after flushing all caches
    /// (equal digests across protocols ⇒ same final memory).
    pub memory_image_digest: u64,
    /// The final memory image itself (for exact comparisons in tests).
    pub final_memory: Memory,
    /// Peak simultaneous WARD regions observed by the directory.
    pub region_peak: usize,
    /// Invariant violations found by the checker (always empty unless
    /// [`SimOptions::check`] was set; must be empty on an unmutated run).
    pub violations: Vec<InvariantViolation>,
    /// The observability report (always `None` unless [`SimOptions::obs`]
    /// was set): cycle-stamped event timeline, per-epoch summaries, latency
    /// histograms and the Perfetto exporter.
    pub obs: Option<ObsReport>,
    /// Per-lane accounting of a laned run (always `None` unless
    /// [`SimOptions::lanes`] requested more than one lane). Diagnostic
    /// only: the report is not part of [`SimOutcome::stats`] and is never
    /// serialized, so statistics, digests and observability reports stay
    /// bit-identical across lane counts.
    pub lane_report: Option<LaneReport>,
}

/// Options for [`simulate_with_options`].
#[derive(Clone, Debug, Default)]
pub struct SimOptions {
    /// Energy parameters.
    pub energy: EnergyParams,
    /// An optional deterministic fault-injection campaign.
    pub faults: Option<FaultPlan>,
    /// Run the coherence invariant checker after every directory
    /// transaction; violations land in [`SimOutcome::violations`].
    pub check: bool,
    /// Record cycle-stamped protocol events, per-epoch summaries and
    /// latency histograms; the report lands in [`SimOutcome::obs`].
    /// Recording is passive — statistics and memory images stay
    /// bit-identical to an unobserved run.
    pub obs: bool,
    /// Cooperative cancellation: when set, [`SimEngine::run_with_cancel`]
    /// (and [`try_simulate`]) poll the token every
    /// [`CANCEL_CHECK_EVENTS`] scheduler steps and return a typed
    /// [`SimError::Cancelled`] once it trips. `None` (the default) costs
    /// nothing: the cancellable run loop collapses to the plain one. The
    /// token is **not** part of the options fingerprint — the same
    /// simulation requested with different tokens is the same
    /// content-addressed computation — and it is never checkpointed.
    pub cancel: Option<CancelToken>,
    /// Event lanes: shard the scheduler's core selection into this many
    /// per-socket [`LaneSet`](crate::LaneSet) lanes merged in canonical
    /// `(clock, core, seq)` order. `0` and `1` both mean the plain
    /// sequential scan; values above the core count clamp down. Laned runs
    /// are **bit-identical** to sequential runs — same statistics, memory
    /// digests and observability reports — which the lane-determinism CI
    /// gate asserts across the whole benchmark suite. Like `cancel`, the
    /// lane count is an execution-strategy knob, not part of the options
    /// fingerprint: the same simulation at any lane count is the same
    /// content-addressed computation, and checkpoints resume across
    /// differing lane counts.
    pub lanes: usize,
}

/// Scheduler steps between polls of the cancellation token in
/// [`SimEngine::run_with_cancel`]. At the measured millions of events per
/// second this bounds cancellation latency to well under a millisecond,
/// while keeping the hot loop free of per-event atomic loads.
pub const CANCEL_CHECK_EVENTS: u64 = 4096;

struct Core {
    clock: u64,
    deque: VecDeque<TaskId>,
    current: Option<TaskId>,
    /// Outstanding store completion times.
    store_buffer: BinaryHeap<Reverse<u64>>,
}

struct TaskRun {
    next_event: usize,
    /// Forked children not yet completed. `u64`, not `u32`: the count comes
    /// from `children.len()`, and narrowing it was the one genuinely lossy
    /// cast on the replay path — a fork wider than `u32::MAX` would have
    /// wrapped and deadlocked the join. Widening also widens the
    /// checkpoint field (format version 2).
    pending_children: u64,
}

/// Replay `program` on `machine` under `protocol`.
///
/// The replay is deterministic: the same inputs produce identical statistics
/// and memory images.
///
/// # Panics
///
/// Panics if the trace is malformed (see
/// [`TraceProgram::check_invariants`]).
pub fn simulate(
    program: &TraceProgram,
    machine: &MachineConfig,
    protocol: ProtocolId,
) -> SimOutcome {
    simulate_with_energy(program, machine, protocol, &EnergyParams::default())
}

/// [`simulate`] with explicit energy parameters.
pub fn simulate_with_energy(
    program: &TraceProgram,
    machine: &MachineConfig,
    protocol: ProtocolId,
    energy_params: &EnergyParams,
) -> SimOutcome {
    simulate_with_options(
        program,
        machine,
        protocol,
        &SimOptions {
            energy: *energy_params,
            ..SimOptions::default()
        },
    )
}

/// [`simulate_with_options`] behind up-front validation: rejects an
/// inconsistent machine or out-of-range fault plan with a typed
/// [`SimError`] instead of panicking mid-replay.
pub fn try_simulate(
    program: &TraceProgram,
    machine: &MachineConfig,
    protocol: ProtocolId,
    opts: &SimOptions,
) -> Result<SimOutcome, SimError> {
    SimEngine::try_new(program, machine, protocol, opts)?.run_with_cancel()
}

/// [`simulate`] with full control: energy parameters, the invariant
/// checker, and deterministic fault injection.
pub fn simulate_with_options(
    program: &TraceProgram,
    machine: &MachineConfig,
    protocol: ProtocolId,
    opts: &SimOptions,
) -> SimOutcome {
    SimEngine::new(program, machine, protocol, opts).run()
}

/// A resumable replay: the whole simulation state of one run, advanced one
/// scheduler step at a time.
///
/// `SimEngine::new(p, m, proto, opts).run()` is exactly
/// [`simulate_with_options`]`(p, m, proto, opts)`. Between any two
/// [`step`](Self::step) calls the engine sits at an instruction boundary
/// and can be serialized to a checkpoint ([`crate::checkpoint`]); a fresh
/// engine restored from that checkpoint continues the run bit-identically.
pub struct SimEngine<'a> {
    program: &'a TraceProgram,
    machine: &'a MachineConfig,
    protocol: ProtocolId,
    opts: SimOptions,
    coh: CoherenceSystem,
    injector: Option<FaultInjector>,
    recorder: Option<ObsRecorder>,
    rng: SmallRng,
    cores: Vec<Core>,
    tasks: Vec<TaskRun>,
    /// Live region-token → directory id bindings, sorted by token. A flat
    /// sorted vec: traces hold few simultaneous regions, lookups are binary
    /// searches, and the checkpoint encoding (sorted by token) falls out
    /// for free.
    regions: Vec<(u32, RegionId)>,
    stats: SimStats,
    completed: usize,
    makespan: u64,
    steps: u64,
    /// Sharded core selection (`None` when running the plain sequential
    /// scan, i.e. [`SimOptions::lanes`] `<= 1`).
    lane_set: Option<LaneSet>,
}

impl fmt::Debug for SimEngine<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimEngine")
            .field("program", &self.program.name)
            .field("machine", &self.machine.name)
            .field("protocol", &self.protocol)
            .field("completed", &self.completed)
            .field("steps", &self.steps)
            .finish_non_exhaustive()
    }
}

impl<'a> SimEngine<'a> {
    /// Set up a replay of `program` on `machine` under `protocol`, ready at
    /// the first instruction boundary.
    ///
    /// # Panics
    ///
    /// Panics if the trace is malformed (see
    /// [`TraceProgram::check_invariants`]); use [`Self::try_new`] to also
    /// validate the machine and fault plan up front.
    pub fn new(
        program: &'a TraceProgram,
        machine: &'a MachineConfig,
        protocol: ProtocolId,
        opts: &SimOptions,
    ) -> SimEngine<'a> {
        let mut coh = CoherenceSystem::new(machine.topo, machine.lat, machine.cache, protocol);
        coh.set_memory(program.initial_memory.clone());
        if opts.check {
            coh.enable_checker();
        }
        let recorder = if opts.obs {
            coh.enable_obs();
            Some(ObsRecorder::new())
        } else {
            None
        };
        let injector = opts
            .faults
            .clone()
            .map(|plan| FaultInjector::new(plan, program.address_range));
        if let Some(inj) = &injector {
            inj.install_mutations(&mut coh);
        }
        let rng = SmallRng::seed_from_u64(machine.seed);

        let ncores = machine.num_cores();
        let mut cores: Vec<Core> = (0..ncores)
            .map(|_| Core {
                clock: 0,
                deque: VecDeque::new(),
                current: None,
                store_buffer: BinaryHeap::new(),
            })
            .collect();
        let tasks: Vec<TaskRun> = program
            .tasks
            .iter()
            .map(|_| TaskRun {
                next_event: 0,
                pending_children: 0,
            })
            .collect();
        let stats = SimStats {
            tasks: program.tasks.len() as u64,
            ..SimStats::default()
        };
        cores[0].current = Some(0); // root starts on core 0

        let lane_set = (opts.lanes > 1).then(|| LaneSet::new(machine.topo, opts.lanes));

        SimEngine {
            program,
            machine,
            protocol,
            opts: opts.clone(),
            coh,
            injector,
            recorder,
            rng,
            cores,
            tasks,
            regions: Vec::new(),
            stats,
            completed: 0,
            makespan: 0,
            steps: 0,
            lane_set,
        }
    }

    /// [`Self::new`] behind up-front validation of the machine description
    /// and fault plan.
    pub fn try_new(
        program: &'a TraceProgram,
        machine: &'a MachineConfig,
        protocol: ProtocolId,
        opts: &SimOptions,
    ) -> Result<SimEngine<'a>, SimError> {
        machine.validate()?;
        if let Some(plan) = &opts.faults {
            plan.validate()?;
        }
        Ok(SimEngine::new(program, machine, protocol, opts))
    }

    /// Whether every task of the trace has run to completion.
    pub fn is_done(&self) -> bool {
        self.completed >= self.program.tasks.len()
    }

    /// Scheduler steps executed so far (each [`Self::step`] that did work).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Tasks that have run to completion so far.
    pub fn completed_tasks(&self) -> usize {
        self.completed
    }

    /// The protocol this engine replays under.
    pub fn protocol(&self) -> ProtocolId {
        self.protocol
    }

    pub(crate) fn program_ref(&self) -> &'a TraceProgram {
        self.program
    }

    pub(crate) fn machine_ref(&self) -> &'a MachineConfig {
        self.machine
    }

    pub(crate) fn opts_ref(&self) -> &SimOptions {
        &self.opts
    }

    /// Execute one scheduler step (one event, one task completion or one
    /// work-acquisition attempt on the core with the smallest clock).
    /// Returns `true` while more work remains; once it returns `false` the
    /// replay is complete and [`Self::finish`] produces the outcome.
    pub fn step(&mut self) -> bool {
        if self.is_done() {
            return false;
        }
        self.step_inner();
        self.steps += 1;
        !self.is_done()
    }

    /// Run the replay to completion and produce the outcome. Ignores any
    /// [`SimOptions::cancel`] token; use [`Self::run_with_cancel`] for the
    /// cooperative path.
    pub fn run(mut self) -> SimOutcome {
        while self.step() {}
        self.finish()
    }

    /// Run the replay to completion, polling the [`SimOptions::cancel`]
    /// token (if any) every [`CANCEL_CHECK_EVENTS`] scheduler steps. With
    /// no token installed this is exactly [`Self::run`] — the per-step
    /// loop carries no extra branch. With a token, a trip is observed
    /// within one check interval and surfaces as a typed
    /// [`SimError::Cancelled`]; the partially-advanced engine is dropped
    /// (a cancelled replay publishes nothing).
    pub fn run_with_cancel(mut self) -> Result<SimOutcome, SimError> {
        let Some(token) = self.opts.cancel.clone() else {
            return Ok(self.run());
        };
        loop {
            if token.is_cancelled() {
                return Err(SimError::Cancelled { steps: self.steps });
            }
            let mut burst = 0u64;
            while burst < CANCEL_CHECK_EVENTS {
                if !self.step() {
                    return Ok(self.finish());
                }
                burst += 1;
            }
        }
    }

    fn step_inner(&mut self) {
        let program = self.program;
        let machine = self.machine;
        let ncores = self.cores.len();

        // Pick the core with the smallest clock (ties: lowest id) —
        // either by the plain sequential scan or, when lanes are on, by
        // the sharded per-lane frontiers merged in canonical
        // `(clock, core, seq)` order. Both compute the same argmin, so
        // laned runs replay the identical event order.
        let cid = match self.lane_set.as_mut() {
            Some(ls) => {
                let cores = &self.cores;
                let cid = ls.pick(|i| cores[i].clock);
                debug_assert_eq!(
                    cid,
                    (0..ncores)
                        .min_by_key(|&i| (cores[i].clock, i))
                        .expect("at least one core"),
                    "laned merge diverged from the canonical sequential order"
                );
                cid
            }
            None => (0..ncores)
                .min_by_key(|&i| (self.cores[i].clock, i))
                .expect("at least one core"),
        };

        let Some(task) = self.cores[cid].current else {
            acquire_work(
                cid,
                &mut self.cores,
                machine,
                &mut self.rng,
                &mut self.stats,
                &mut self.coh,
            );
            return;
        };

        let events = &program.tasks[task].events;
        if self.tasks[task].next_event == events.len() {
            // Task complete: a sync point — lazy protocols self-downgrade
            // and self-invalidate here so the join edge publishes this
            // task's writes (free for the eager protocols).
            self.completed += 1;
            let sync = self.coh.task_sync(cid);
            self.cores[cid].clock += sync;
            self.stats.region_cycles += sync;
            self.makespan = self.makespan.max(self.cores[cid].clock);
            self.cores[cid].current = None;
            if let Some(parent) = program.tasks[task].parent {
                self.tasks[parent].pending_children -= 1;
                if self.tasks[parent].pending_children == 0 {
                    // The last finisher resumes the parent (work stealing's
                    // "last one home continues" rule).
                    self.cores[cid].current = Some(parent);
                }
            }
            return;
        }

        let ev = &events[self.tasks[task].next_event];
        self.tasks[task].next_event += 1;
        let coh = &mut self.coh;
        let injector = &mut self.injector;
        let recorder = &mut self.recorder;
        let stats = &mut self.stats;
        let regions = &mut self.regions;
        let tasks = &mut self.tasks;
        let core = &mut self.cores[cid];
        // Observability bookkeeping filled in by the access arms and
        // consumed after the match (where the core borrow has ended); both
        // stay untouched when recording is off.
        let mut obs_access: Option<u64> = None;
        let mut obs_fault_extra = 0u64;
        // Lane accounting: whether this step's access was served
        // lane-locally by the issuing core's private hierarchy (classified
        // *before* the access mutates cache state). Only evaluated when
        // lanes are on; purely diagnostic either way.
        let laned = self.lane_set.is_some();
        let mut lane_local = false;
        match ev {
            Event::Compute { amount } => {
                let c = machine.compute_cycles(*amount);
                core.clock += c;
                stats.compute_cycles += c;
                stats.instructions += *amount;
            }
            Event::Load { addr, size } => {
                drain_store_buffer(core);
                if laned {
                    lane_local = coh.classify_private(cid, AccessKind::Load, *addr).is_some();
                }
                let lat = timed(recorder, "access.load", || {
                    coh.load(cid, *addr, *size as u64)
                });
                core.clock += lat;
                stats.load_cycles += lat;
                stats.instructions += 1;
                stats.memory_accesses += 1;
                if let Some(inj) = injector.as_mut() {
                    let extra = inj.after_access(lat, machine, coh);
                    core.clock += extra;
                    obs_fault_extra += extra;
                }
                obs_access = Some(lat);
            }
            Event::Store { addr, size, val } => {
                drain_store_buffer(core);
                // Missing stores occupy a write MSHR; a burst of long-latency
                // stores back-pressures the core once all MSHRs are busy.
                if core.store_buffer.len() >= machine.store_mshrs.min(machine.store_buffer) {
                    let Reverse(t) = core.store_buffer.pop().expect("non-empty");
                    if t > core.clock {
                        stats.store_stall_cycles += t - core.clock;
                        core.clock = t;
                    }
                }
                if laned {
                    lane_local = coh
                        .classify_private(cid, AccessKind::Store, *addr)
                        .is_some();
                }
                let bytes = val.to_le_bytes();
                let lat = timed(recorder, "access.store", || {
                    coh.store(cid, *addr, &bytes[..*size as usize])
                });
                if lat > machine.lat.l2 {
                    core.store_buffer.push(Reverse(core.clock + lat));
                }
                core.clock += 1; // issue cost; completion hidden by the buffer
                stats.store_issue_cycles += 1;
                stats.instructions += 1;
                stats.memory_accesses += 1;
                if let Some(inj) = injector.as_mut() {
                    let extra = inj.after_access(lat, machine, coh);
                    core.clock += extra;
                    obs_fault_extra += extra;
                }
                obs_access = Some(lat);
            }
            Event::Rmw {
                addr,
                size,
                val,
                op,
            } => {
                drain_store_buffer(core);
                let lat = timed(recorder, "access.rmw", || match op {
                    warden_rt::RmwOp::Swap => {
                        let bytes = val.to_le_bytes();
                        coh.rmw(cid, *addr, &bytes[..*size as usize])
                    }
                    warden_rt::RmwOp::Add => coh.rmw_add(cid, *addr, *size as u64, *val),
                });
                core.clock += lat;
                stats.rmw_cycles += lat;
                stats.instructions += 1;
                stats.memory_accesses += 1;
                if let Some(inj) = injector.as_mut() {
                    let extra = inj.after_access(lat, machine, coh);
                    core.clock += extra;
                    obs_fault_extra += extra;
                }
                obs_access = Some(lat);
            }
            Event::Fork { children } => {
                // The fork edge is a sync point: writes made before the
                // fork must be visible to whichever core runs a child.
                let sync = coh.task_sync(cid);
                core.clock += sync;
                stats.region_cycles += sync;
                tasks[task].pending_children = children.len() as u64;
                core.current = Some(children[0]);
                for &c in &children[1..] {
                    core.deque.push_back(c);
                }
            }
            Event::RegionAdd { start, end, token } => {
                if coh.uses_regions() {
                    core.clock += machine.lat.region_instr;
                    stats.region_cycles += machine.lat.region_instr;
                    stats.instructions += 1;
                    if let Some(id) = coh.add_region(*start, *end) {
                        match regions.binary_search_by_key(token, |&(t, _)| t) {
                            Ok(pos) => regions[pos].1 = id,
                            Err(pos) => regions.insert(pos, (*token, id)),
                        }
                    }
                    if let Some(inj) = injector.as_mut() {
                        let extra = inj.after_region_add(coh);
                        core.clock += extra;
                        obs_fault_extra += extra;
                    }
                }
            }
            Event::RegionRemove { token } => {
                if coh.uses_regions() {
                    stats.instructions += 1;
                    match regions
                        .binary_search_by_key(token, |&(t, _)| t)
                        .ok()
                        .map(|pos| regions.remove(pos).1)
                    {
                        Some(id) => {
                            let lat = timed(recorder, "reconcile-walk", || coh.remove_region(id));
                            core.clock += lat;
                            stats.region_cycles += lat;
                        }
                        None => {
                            // The add overflowed: the remove is a no-op
                            // instruction.
                            core.clock += machine.lat.region_instr;
                            stats.region_cycles += machine.lat.region_instr;
                        }
                    }
                }
            }
        }
        if let Some(rec) = self.recorder.as_mut() {
            let clock = self.cores[cid].clock;
            if let Some(lat) = obs_access {
                rec.note_access(clock, lat, machine.lat.l2);
            }
            if obs_fault_extra > 0 {
                rec.note_fault_stall(clock, cid, obs_fault_extra);
            }
            rec.drain(&mut self.coh, clock, cid);
        }
        if lane_local {
            if let Some(ls) = self.lane_set.as_mut() {
                ls.note_local(cid);
            }
        }
        self.makespan = self.makespan.max(self.cores[cid].clock);
    }

    /// Record a checkpoint-frame event at the run's current leading clock.
    /// Frames are execution history — a resumed run keeps the one recorded
    /// before its snapshot, an uninterrupted run records none.
    pub(crate) fn note_checkpoint_frame(&mut self) {
        if let Some(rec) = self.recorder.as_mut() {
            let clock = self.cores.iter().map(|c| c.clock).max().unwrap_or(0);
            rec.note_checkpoint_frame(clock);
        }
    }

    /// Consume the engine and produce the [`SimOutcome`] (end-of-run
    /// cleanup, cache flush, energy accounting). Meaningful once
    /// [`Self::step`] has returned `false`; calling it earlier reports the
    /// partial run as-is.
    pub fn finish(mut self) -> SimOutcome {
        if let Some(inj) = self.injector.as_mut() {
            // End-of-run cleanup: release decoys still pinned, so region
            // state matches a fault-free run (unbilled, like the flush
            // below).
            inj.finish(&mut self.coh);
            self.stats.faults = inj.stats;
        }
        if let Some(rec) = self.recorder.as_mut() {
            // End-of-run cleanup events (e.g. decoy-region releases) land
            // at the makespan, attributed to core 0.
            rec.drain(&mut self.coh, self.makespan, 0);
        }
        let obs = self.recorder.take().map(ObsRecorder::into_report);
        let violations = self.coh.take_violations();
        let region_peak = self.coh.region_peak();
        self.coh.flush_all();
        self.stats.cycles = self.makespan;
        self.stats.core_cycles_total = self.cores.iter().map(|c| c.clock).sum();
        self.stats.coherence = *self.coh.stats();
        let energy = energy_of(&self.stats, self.machine.topo, &self.opts.energy);
        // The engine is consumed: move the final image out instead of
        // cloning it (the clone used to rival the replay itself on
        // multi-megabyte images).
        let final_memory = self.coh.take_memory();
        SimOutcome {
            protocol: self.protocol,
            machine: self.machine.name.clone(),
            memory_image_digest: final_memory.digest(),
            final_memory,
            stats: self.stats,
            energy,
            region_peak,
            violations,
            obs,
            lane_report: self.lane_set.as_ref().map(LaneSet::report),
        }
    }

    /// Serialize the complete mutable simulation state (scheduler, cores,
    /// store buffers, RNG, fault injector, coherence system, memory image
    /// and statistics) at the current instruction boundary.
    pub(crate) fn encode_state(&self, enc: &mut Encoder) {
        enc.put_usize(self.completed);
        enc.put_u64(self.makespan);
        enc.put_u64(self.steps);
        enc.put_u64(self.rng.state());
        // The lane count that produced this frame (format version 4).
        // Informational only: the merged event order is canonical, so a
        // frame written at any lane count resumes at any other — the
        // restoring engine keeps its own lanes and rebuilds their
        // frontiers from the restored clocks. Per-lane accounting is not
        // persisted; a resumed run's lane report covers the resumed part.
        enc.put_usize(self.lane_set.as_ref().map_or(1, LaneSet::num_lanes));

        enc.put_usize(self.cores.len());
        for core in &self.cores {
            enc.put_u64(core.clock);
            match core.current {
                Some(t) => {
                    enc.put_bool(true);
                    enc.put_usize(t);
                }
                None => enc.put_bool(false),
            }
            enc.put_usize(core.deque.len());
            for &t in &core.deque {
                enc.put_usize(t);
            }
            // The heap only ever exposes its minimum, so a sorted vector is
            // a canonical, replay-equivalent encoding of its contents.
            let mut pending: Vec<u64> = core.store_buffer.iter().map(|&Reverse(t)| t).collect();
            pending.sort_unstable();
            enc.put_usize(pending.len());
            for t in pending {
                enc.put_u64(t);
            }
        }

        enc.put_usize(self.tasks.len());
        for t in &self.tasks {
            enc.put_usize(t.next_event);
            enc.put_u64(t.pending_children);
        }

        // `self.regions` is kept sorted by token, which is exactly the
        // canonical encoding order.
        enc.put_usize(self.regions.len());
        for &(tok, id) in &self.regions {
            enc.put_u32(tok);
            enc.put_u64(id.0);
        }

        self.stats.encode_into(enc);
        match &self.injector {
            Some(inj) => {
                enc.put_bool(true);
                inj.encode_state(enc);
            }
            None => enc.put_bool(false),
        }
        match &self.recorder {
            Some(rec) => {
                enc.put_bool(true);
                rec.encode_state(enc);
            }
            None => enc.put_bool(false),
        }
        self.coh.encode_state(enc);
    }

    /// Restore state serialized by [`Self::encode_state`] into this engine,
    /// which must have been freshly constructed from the same `(program,
    /// machine, protocol, opts)` — the checkpoint layer verifies that via
    /// fingerprints before calling this. On error the engine must be
    /// discarded (it may be partially updated).
    pub(crate) fn apply_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), CodecError> {
        let invalid = |what: &'static str, detail: String| CodecError::Invalid { what, detail };
        let total = self.program.tasks.len();

        let completed = dec.take_usize()?;
        if completed > total {
            return Err(invalid(
                "engine",
                format!("{completed} completed of {total} tasks"),
            ));
        }
        let makespan = dec.take_u64()?;
        let steps = dec.take_u64()?;
        let rng_state = dec.take_u64()?;
        // Lane count the frame was written under — informational (see
        // `encode_state`); sanity-checked but otherwise ignored, so a
        // frame resumes under any lane count.
        let frame_lanes = dec.take_usize()?;
        if frame_lanes == 0 || frame_lanes > self.cores.len() {
            return Err(invalid(
                "engine",
                format!(
                    "{frame_lanes} lanes, machine has {} cores",
                    self.cores.len()
                ),
            ));
        }

        let ncores = dec.take_usize()?;
        if ncores != self.cores.len() {
            return Err(invalid(
                "engine",
                format!("{ncores} cores, machine has {}", self.cores.len()),
            ));
        }
        let mut cores = Vec::with_capacity(ncores);
        for _ in 0..ncores {
            let clock = dec.take_u64()?;
            let current = if dec.take_bool()? {
                let t = dec.take_usize()?;
                if t >= total {
                    return Err(invalid("engine", format!("current task {t} out of range")));
                }
                Some(t)
            } else {
                None
            };
            let dlen = dec.take_count(8)?;
            let mut deque = VecDeque::with_capacity(dlen);
            for _ in 0..dlen {
                let t = dec.take_usize()?;
                if t >= total {
                    return Err(invalid("engine", format!("queued task {t} out of range")));
                }
                deque.push_back(t);
            }
            let sblen = dec.take_count(8)?;
            let mut store_buffer = BinaryHeap::with_capacity(sblen);
            let mut prev = 0u64;
            for i in 0..sblen {
                let t = dec.take_u64()?;
                if i > 0 && t < prev {
                    return Err(invalid("engine", "store buffer not sorted".into()));
                }
                prev = t;
                store_buffer.push(Reverse(t));
            }
            cores.push(Core {
                clock,
                deque,
                current,
                store_buffer,
            });
        }

        let ntasks = dec.take_usize()?;
        if ntasks != total {
            return Err(invalid(
                "engine",
                format!("{ntasks} tasks, trace has {total}"),
            ));
        }
        let mut tasks = Vec::with_capacity(ntasks);
        for i in 0..ntasks {
            let next_event = dec.take_usize()?;
            if next_event > self.program.tasks[i].events.len() {
                return Err(invalid(
                    "engine",
                    format!("task {i} event cursor {next_event} out of range"),
                ));
            }
            let pending_children = dec.take_u64()?;
            tasks.push(TaskRun {
                next_event,
                pending_children,
            });
        }

        let nregions = dec.take_count(12)?;
        let mut regions = Vec::with_capacity(nregions);
        let mut prev_tok: Option<u32> = None;
        for _ in 0..nregions {
            let tok = dec.take_u32()?;
            if prev_tok.is_some_and(|p| tok <= p) {
                return Err(invalid("engine", "region tokens not ascending".into()));
            }
            prev_tok = Some(tok);
            let id = RegionId(dec.take_u64()?);
            regions.push((tok, id));
        }

        let stats = SimStats::decode_from(dec)?;
        let has_injector = dec.take_bool()?;
        if has_injector != self.injector.is_some() {
            return Err(invalid(
                "engine",
                "fault-plan presence differs from the checkpoint".into(),
            ));
        }
        if let Some(inj) = self.injector.as_mut() {
            inj.apply_state(dec)?;
        }
        let has_recorder = dec.take_bool()?;
        if has_recorder != self.recorder.is_some() {
            return Err(invalid(
                "engine",
                "observability presence differs from the checkpoint".into(),
            ));
        }
        if let Some(rec) = self.recorder.as_mut() {
            // The span profile restarts empty: it measures the host.
            *rec = ObsRecorder::decode_state(dec)?;
        }
        self.coh.restore_state(dec)?;

        self.completed = completed;
        self.makespan = makespan;
        self.steps = steps;
        self.rng = SmallRng::seed_from_u64(rng_state);
        self.cores = cores;
        self.tasks = tasks;
        self.regions = regions;
        self.stats = stats;
        if let Some(ls) = self.lane_set.as_mut() {
            // The restored clocks moved behind the lane set's back.
            let cores = &self.cores;
            ls.rebuild(|i| cores[i].clock);
        }
        Ok(())
    }
}

fn drain_store_buffer(core: &mut Core) {
    while let Some(&Reverse(t)) = core.store_buffer.peek() {
        if t <= core.clock {
            core.store_buffer.pop();
        } else {
            break;
        }
    }
}

/// An idle core looks for work: its own deque first, then a random victim.
///
/// Taking a task — popped or stolen — is a sync point for the lazy
/// protocols: the consumer self-invalidates so it observes everything the
/// producer published at its fork edge. The sync must not perturb the RNG
/// draw sequence (replays are bit-identical across protocols' schedules),
/// so it runs strictly after the steal decision.
fn acquire_work(
    cid: usize,
    cores: &mut [Core],
    machine: &MachineConfig,
    rng: &mut SmallRng,
    stats: &mut SimStats,
    coh: &mut CoherenceSystem,
) {
    if let Some(t) = cores[cid].deque.pop_back() {
        cores[cid].current = Some(t);
        let sync = coh.task_sync(cid);
        cores[cid].clock += sync;
        stats.region_cycles += sync;
        return;
    }
    // Count-then-nth instead of collecting a victims Vec: the hot idle path
    // allocates nothing, and `gen_range(0..count)` draws exactly the same
    // RNG value the old `gen_range(0..victims.len())` did, so replay stays
    // bit-identical.
    let is_victim = |i: &usize| *i != cid && !cores[*i].deque.is_empty();
    let count = (0..cores.len()).filter(is_victim).count();
    if count == 0 {
        cores[cid].clock += machine.idle_tick;
        stats.idle_cycles += machine.idle_tick;
        return;
    }
    stats.steal_attempts += 1;
    let k = rng.gen_range(0..count);
    let victim = (0..cores.len())
        .filter(is_victim)
        .nth(k)
        .expect("k < victim count");
    let stolen = cores[victim].deque.pop_front().expect("victim non-empty");
    cores[cid].clock += machine.steal_cost;
    stats.steal_cycles += machine.steal_cost;
    cores[cid].current = Some(stolen);
    stats.steals += 1;
    let sync = coh.task_sync(cid);
    cores[cid].clock += sync;
    stats.region_cycles += sync;
}

#[cfg(test)]
mod tests {
    use super::*;
    use warden_rt::{trace_program, MarkPolicy, RtOptions};

    fn tiny_machine() -> MachineConfig {
        MachineConfig::dual_socket().with_cores(2)
    }

    fn sample_program() -> TraceProgram {
        trace_program("sample", RtOptions::default(), |ctx| {
            let xs = ctx.tabulate::<u64>(512, 32, &|_c, i| i * 3 + 1);
            let sum = ctx.reduce(0, 512, 32, &|c, i| c.read(&xs, i), &|a, b| a + b, 0);
            assert_eq!(sum, (0..512u64).map(|i| i * 3 + 1).sum());
        })
    }

    #[test]
    fn replay_is_deterministic() {
        let p = sample_program();
        let m = tiny_machine();
        let a = simulate(&p, &m, ProtocolId::Warden);
        let b = simulate(&p, &m, ProtocolId::Warden);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.memory_image_digest, b.memory_image_digest);
    }

    #[test]
    fn protocols_produce_identical_memory_images() {
        let p = sample_program();
        let m = tiny_machine();
        let mesi = simulate(&p, &m, ProtocolId::Mesi);
        let warden = simulate(&p, &m, ProtocolId::Warden);
        assert_eq!(mesi.memory_image_digest, warden.memory_image_digest);
        let (lo, _) = p.address_range;
        let len = p.address_range.1 - lo;
        assert_eq!(
            mesi.final_memory
                .first_difference(&warden.final_memory, lo, len),
            None
        );
    }

    #[test]
    fn replay_image_matches_logical_image() {
        let p = sample_program();
        let m = tiny_machine();
        let out = simulate(&p, &m, ProtocolId::Warden);
        let (lo, hi) = p.address_range;
        assert_eq!(
            out.final_memory.first_difference(&p.memory, lo, hi - lo),
            None,
            "replayed memory must reproduce the program's logical result"
        );
    }

    #[test]
    fn engine_stepping_matches_one_shot_simulation() {
        let p = sample_program();
        let m = tiny_machine();
        let opts = SimOptions::default();
        let mut eng = SimEngine::new(&p, &m, ProtocolId::Warden, &opts);
        assert!(!eng.is_done());
        while eng.step() {}
        assert!(eng.is_done());
        assert!(eng.steps() > 0);
        assert_eq!(eng.completed_tasks(), p.tasks.len());
        let stepped = eng.finish();
        let oneshot = simulate(&p, &m, ProtocolId::Warden);
        assert_eq!(stepped.stats, oneshot.stats);
        assert_eq!(stepped.memory_image_digest, oneshot.memory_image_digest);
    }

    #[test]
    fn pre_cancelled_token_rejects_the_replay() {
        let p = sample_program();
        let m = tiny_machine();
        let token = CancelToken::new();
        token.cancel();
        let opts = SimOptions {
            cancel: Some(token),
            ..SimOptions::default()
        };
        match try_simulate(&p, &m, ProtocolId::Warden, &opts) {
            Err(SimError::Cancelled { steps }) => assert_eq!(steps, 0),
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn uncancelled_token_is_bit_identical_to_plain_run() {
        let p = sample_program();
        let m = tiny_machine();
        let opts = SimOptions {
            cancel: Some(CancelToken::new()),
            ..SimOptions::default()
        };
        let with_token =
            try_simulate(&p, &m, ProtocolId::Warden, &opts).expect("runs to completion");
        let plain = simulate(&p, &m, ProtocolId::Warden);
        assert_eq!(with_token.stats, plain.stats);
        assert_eq!(with_token.memory_image_digest, plain.memory_image_digest);
    }

    #[test]
    fn mid_run_cancellation_stops_at_the_next_poll_boundary() {
        // Deterministic mid-run cancellation: advance the engine partway by
        // hand, flip the token (as the serving layer does from another
        // thread), then hand the rest of the replay to `run_with_cancel`.
        // It must stop at its first poll rather than finish the program.
        let p = sample_program();
        let m = tiny_machine();
        let full = {
            let mut eng = SimEngine::new(&p, &m, ProtocolId::Warden, &SimOptions::default());
            while eng.step() {}
            eng.steps()
        };
        let head = full / 2;
        let token = CancelToken::new();
        let opts = SimOptions {
            cancel: Some(token.clone()),
            ..SimOptions::default()
        };
        let mut eng = SimEngine::try_new(&p, &m, ProtocolId::Warden, &opts).expect("valid machine");
        for _ in 0..head {
            assert!(eng.step(), "half the run must not exhaust the program");
        }
        token.cancel();
        match eng.run_with_cancel() {
            Err(SimError::Cancelled { steps }) => {
                assert_eq!(steps, head, "cancellation observed at the first poll");
                assert!(steps < full);
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn state_transfer_mid_run_continues_bit_identically() {
        // The core checkpoint property, without any file I/O: pause a run
        // (with the checker and a benign fault campaign active, so every
        // serializable subsystem is live), move its encoded state into a
        // freshly constructed engine, and the continuation must reproduce
        // the uninterrupted run exactly — statistics, energy bits, image.
        let p = sample_program();
        let m = tiny_machine();
        let opts = SimOptions {
            faults: Some(FaultPlan::benign(5)),
            check: true,
            ..SimOptions::default()
        };
        let reference = simulate_with_options(&p, &m, ProtocolId::Warden, &opts);

        let mut eng = SimEngine::new(&p, &m, ProtocolId::Warden, &opts);
        for _ in 0..2_000 {
            if !eng.step() {
                break;
            }
        }
        let mut enc = Encoder::new();
        eng.encode_state(&mut enc);
        let bytes = enc.into_bytes();

        let mut fresh = SimEngine::new(&p, &m, ProtocolId::Warden, &opts);
        let mut dec = Decoder::new(&bytes);
        fresh.apply_state(&mut dec).expect("state applies");
        dec.finish().expect("no trailing bytes");

        // Re-encoding the restored engine reproduces the snapshot exactly.
        let mut enc2 = Encoder::new();
        fresh.encode_state(&mut enc2);
        assert_eq!(enc2.bytes(), &bytes[..], "snapshot must be canonical");

        let resumed = fresh.run();
        assert_eq!(resumed.stats, reference.stats);
        assert_eq!(resumed.memory_image_digest, reference.memory_image_digest);
        assert_eq!(resumed.energy, reference.energy);
        assert!(resumed.violations.is_empty());
    }

    #[test]
    fn observability_is_passive_and_reports() {
        use crate::obs::SimEvent;
        let p = sample_program();
        let m = tiny_machine();
        let plain = simulate(&p, &m, ProtocolId::Warden);
        assert!(plain.obs.is_none(), "obs is opt-in");
        let opts = SimOptions {
            obs: true,
            ..SimOptions::default()
        };
        let observed = simulate_with_options(&p, &m, ProtocolId::Warden, &opts);
        assert_eq!(
            observed.stats, plain.stats,
            "recording must not perturb the run"
        );
        assert_eq!(observed.memory_image_digest, plain.memory_image_digest);

        let rep = observed.obs.expect("report present");
        assert!(!rep.timeline.is_empty());
        assert!(
            rep.metrics.counter("GetS").unwrap_or(0)
                + rep.metrics.counter("GetS.ward").unwrap_or(0)
                > 0,
            "read misses must be observed"
        );
        assert!(
            !rep.region_spans.is_empty(),
            "leaf heaps must open WARD regions"
        );
        assert!(rep.metrics.hist("miss_latency_cycles").unwrap().count() > 0);
        // With nothing dropped, the epoch summaries account for exactly the
        // protocol events on the timeline.
        assert_eq!(rep.dropped_events, 0);
        let epoch_events: u64 = rep.epochs.iter().map(|e| e.events).sum();
        let proto_events = rep
            .timeline
            .iter()
            .filter(|t| matches!(t.event, SimEvent::Protocol(_)))
            .count() as u64;
        assert_eq!(epoch_events, proto_events);
        // The host profile saw the instrumented phases.
        assert!(rep.spans.get("access.load").is_some());
        assert!(rep.spans.get("reconcile-walk").is_some());
        // And the timeline exports as a well-formed Perfetto trace.
        warden_obs::validate_trace(&rep.trace_event_json("sample")).expect("well-formed trace");
    }

    #[test]
    fn state_transfer_preserves_observability_history() {
        let p = sample_program();
        let m = tiny_machine();
        let opts = SimOptions {
            obs: true,
            ..SimOptions::default()
        };
        let reference = simulate_with_options(&p, &m, ProtocolId::Warden, &opts);

        let mut eng = SimEngine::new(&p, &m, ProtocolId::Warden, &opts);
        for _ in 0..2_000 {
            if !eng.step() {
                break;
            }
        }
        let mut enc = Encoder::new();
        eng.encode_state(&mut enc);
        let bytes = enc.into_bytes();

        let mut fresh = SimEngine::new(&p, &m, ProtocolId::Warden, &opts);
        let mut dec = Decoder::new(&bytes);
        fresh.apply_state(&mut dec).expect("state applies");
        dec.finish().expect("no trailing bytes");
        let mut enc2 = Encoder::new();
        fresh.encode_state(&mut enc2);
        assert_eq!(
            enc2.bytes(),
            &bytes[..],
            "snapshot stays canonical with the recorder live"
        );

        let resumed = fresh.run();
        assert_eq!(resumed.stats, reference.stats);
        let (a, b) = (resumed.obs.unwrap(), reference.obs.unwrap());
        assert_eq!(a.timeline, b.timeline, "event history survives transfer");
        assert_eq!(a.epochs, b.epochs);
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn state_transfer_rejects_wrong_shapes() {
        let p = sample_program();
        let m = tiny_machine();
        let opts = SimOptions::default();
        let mut eng = SimEngine::new(&p, &m, ProtocolId::Warden, &opts);
        for _ in 0..500 {
            eng.step();
        }
        let mut enc = Encoder::new();
        eng.encode_state(&mut enc);
        let bytes = enc.into_bytes();

        // A machine with a different core count refuses the state.
        let m1 = MachineConfig::dual_socket().with_cores(1);
        let mut other = SimEngine::new(&p, &m1, ProtocolId::Warden, &opts);
        assert!(other.apply_state(&mut Decoder::new(&bytes)).is_err());

        // An engine expecting a fault injector refuses a fault-free state.
        let faulty = SimOptions {
            faults: Some(FaultPlan::benign(1)),
            ..SimOptions::default()
        };
        let mut other = SimEngine::new(&p, &m, ProtocolId::Warden, &faulty);
        assert!(other.apply_state(&mut Decoder::new(&bytes)).is_err());

        // An observed state refuses an engine without a recorder.
        let observed = SimOptions {
            obs: true,
            ..SimOptions::default()
        };
        let mut eng = SimEngine::new(&p, &m, ProtocolId::Warden, &observed);
        for _ in 0..500 {
            eng.step();
        }
        let mut enc = Encoder::new();
        eng.encode_state(&mut enc);
        let obs_bytes = enc.into_bytes();
        let mut other = SimEngine::new(&p, &m, ProtocolId::Warden, &opts);
        assert!(other.apply_state(&mut Decoder::new(&obs_bytes)).is_err());
    }

    #[test]
    fn pending_children_survives_codec_beyond_u32() {
        // Regression for the lossy-cast audit: `pending_children` was `u32`
        // and `children.len() as u32` would silently wrap for a fork wider
        // than u32::MAX, deadlocking the join. The field (and its checkpoint
        // encoding) is now u64; a value past the old limit must round-trip.
        let p = sample_program();
        let m = tiny_machine();
        let opts = SimOptions::default();
        let mut eng = SimEngine::new(&p, &m, ProtocolId::Warden, &opts);
        for _ in 0..100 {
            eng.step();
        }
        let wide = u64::from(u32::MAX) + 5;
        eng.tasks[0].pending_children = wide;

        let mut enc = Encoder::new();
        eng.encode_state(&mut enc);
        let bytes = enc.into_bytes();

        let mut fresh = SimEngine::new(&p, &m, ProtocolId::Warden, &opts);
        let mut dec = Decoder::new(&bytes);
        fresh.apply_state(&mut dec).expect("state applies");
        dec.finish().expect("no trailing bytes");
        assert_eq!(fresh.tasks[0].pending_children, wide);
    }

    #[test]
    fn warden_reduces_downgrades_on_leaf_result_flow() {
        // The pattern the paper's marking actually captures: every leaf
        // allocates a result buffer in its own (WARD) heap, fills it, and
        // the parent reads it after the join. Under MESI those reads
        // downgrade the child cores' dirty copies; under WARDen the
        // completion-time reconciliation already pushed the data to the
        // LLC.
        use warden_rt::{SimSlice, TaskCtx};
        fn rec(ctx: &mut TaskCtx<'_>, depth: u32) -> SimSlice<u64> {
            if depth == 0 {
                let buf = ctx.alloc::<u64>(64);
                for i in 0..64 {
                    ctx.write(&buf, i, i * 7);
                }
                return buf;
            }
            let (a, b) = ctx.fork2(|c| rec(c, depth - 1), |c| rec(c, depth - 1));
            // The parent consumes both children's buffers.
            let mut acc = 0u64;
            for i in 0..64 {
                acc = acc
                    .wrapping_add(ctx.read(&a, i))
                    .wrapping_add(ctx.read(&b, i));
            }
            let out = ctx.alloc::<u64>(64);
            for i in 0..64 {
                ctx.write(&out, i, acc.wrapping_add(i));
            }
            out
        }
        let p = trace_program("leafres", RtOptions::default(), |ctx| {
            let _ = rec(ctx, 7);
        });
        let m = tiny_machine();
        let mesi = simulate(&p, &m, ProtocolId::Mesi);
        let warden = simulate(&p, &m, ProtocolId::Warden);
        let (md, wd) = (
            mesi.stats.coherence.downgrades,
            warden.stats.coherence.downgrades,
        );
        assert!(
            (wd as f64) < 0.5 * md as f64,
            "WARDen should eliminate most result-read downgrades (mesi {md}, warden {wd})"
        );
        assert!(
            warden.stats.cycles < mesi.stats.cycles,
            "and run faster (mesi {}, warden {})",
            mesi.stats.cycles,
            warden.stats.cycles
        );
        assert_eq!(mesi.memory_image_digest, warden.memory_image_digest);
    }

    #[test]
    fn warden_overhead_is_bounded_on_unfavourable_work() {
        // Ancestor-tabulate traffic is *not* captured by leaf-heap marking
        // (paper §4.1's conservatism); WARDen must still stay close to MESI
        // — the "benchmarks which benefit minimally" of §7.2.
        let p = trace_program("forky", RtOptions::default(), |ctx| {
            let xs = ctx.tabulate::<u64>(4096, 16, &|c, i| {
                c.work(20);
                i
            });
            let _ = ctx.reduce(0, 4096, 16, &|c, i| c.read(&xs, i), &|a, b| a + b, 0);
        });
        let m = tiny_machine();
        let mesi = simulate(&p, &m, ProtocolId::Mesi);
        let warden = simulate(&p, &m, ProtocolId::Warden);
        assert!(
            (warden.stats.cycles as f64) < 1.10 * mesi.stats.cycles as f64,
            "overhead must stay within 10% (mesi {}, warden {})",
            mesi.stats.cycles,
            warden.stats.cycles
        );
    }

    #[test]
    fn mesi_sees_no_region_activity() {
        let p = sample_program();
        let out = simulate(&p, &tiny_machine(), ProtocolId::Mesi);
        assert_eq!(out.stats.coherence.region_adds, 0);
        assert_eq!(out.region_peak, 0);
    }

    #[test]
    fn unmarked_traces_make_warden_behave_like_mesi() {
        let p = trace_program(
            "nomark",
            RtOptions {
                mark: MarkPolicy::None,
                ..RtOptions::default()
            },
            |ctx| {
                let xs = ctx.tabulate::<u64>(256, 32, &|_c, i| i);
                let _ = ctx.reduce(0, 256, 32, &|c, i| c.read(&xs, i), &|a, b| a + b, 0);
            },
        );
        let m = tiny_machine();
        let mesi = simulate(&p, &m, ProtocolId::Mesi);
        let warden = simulate(&p, &m, ProtocolId::Warden);
        // A legacy (unmarked) application runs unencumbered: identical
        // timing and traffic (Figure 1's legacy path).
        assert_eq!(mesi.stats.cycles, warden.stats.cycles);
        assert_eq!(
            mesi.stats.coherence.inv_plus_dg(),
            warden.stats.coherence.inv_plus_dg()
        );
    }

    #[test]
    fn work_stealing_uses_multiple_cores() {
        let p = sample_program();
        let out = simulate(&p, &tiny_machine(), ProtocolId::Mesi);
        assert!(out.stats.steals > 0, "parallel work must be stolen");
    }

    #[test]
    fn more_cores_do_not_slow_down_parallel_work() {
        let p = trace_program("wide", RtOptions::default(), |ctx| {
            ctx.parallel_for(0, 4096, 64, &|c, _i| c.work(400));
        });
        let m1 = MachineConfig::single_socket().with_cores(1);
        let m4 = MachineConfig::single_socket().with_cores(4);
        let t1 = simulate(&p, &m1, ProtocolId::Mesi).stats.cycles;
        let t4 = simulate(&p, &m4, ProtocolId::Mesi).stats.cycles;
        assert!(
            (t4 as f64) < 0.5 * t1 as f64,
            "4 cores should be at least 2x faster ({t4} vs {t1})"
        );
    }

    #[test]
    fn single_core_runs_to_completion_without_steals() {
        let p = sample_program();
        let m = MachineConfig::single_socket().with_cores(1);
        let out = simulate(&p, &m, ProtocolId::Warden);
        assert_eq!(out.stats.steals, 0);
        assert_eq!(out.stats.tasks, p.tasks.len() as u64);
    }

    #[test]
    fn fewer_store_mshrs_slow_invalidation_storms() {
        // Two tasks ping-pong stores on a shared ancestor array: with one
        // write MSHR, every missing store serializes; with many, the buffer
        // hides them.
        let p = trace_program("storms", RtOptions::default(), |ctx| {
            let xs = ctx.alloc::<u64>(512);
            ctx.fork2(
                |c| {
                    for i in 0..512 {
                        c.write(&xs, i, i);
                    }
                },
                |c| {
                    for i in 0..512 {
                        c.write(&xs, i, i + 1);
                    }
                },
            );
        });
        let base = MachineConfig::dual_socket().with_cores(2);
        let mut narrow = base.clone();
        narrow.store_mshrs = 1;
        let mut wide = base.clone();
        wide.store_mshrs = 56;
        let t_narrow = simulate(&p, &narrow, ProtocolId::Mesi).stats;
        let t_wide = simulate(&p, &wide, ProtocolId::Mesi).stats;
        assert!(
            t_narrow.cycles > t_wide.cycles,
            "1 MSHR ({}) must be slower than 56 ({})",
            t_narrow.cycles,
            t_wide.cycles
        );
        assert!(t_narrow.store_stall_cycles > t_wide.store_stall_cycles);
    }

    #[test]
    fn store_hits_bypass_the_miss_queue() {
        // A single core rewriting one block: after the cold-start misses,
        // every store is an L1 hit and must add no stall cycles — 100x the
        // hit-stores, identical stalls.
        let run = |iters: u64| {
            let p = trace_program("hits", RtOptions::default(), move |ctx| {
                let xs = ctx.alloc::<u64>(4);
                for i in 0..iters {
                    ctx.write(&xs, i % 4, i);
                }
            });
            let mut m = MachineConfig::single_socket().with_cores(1);
            m.store_mshrs = 1;
            simulate(&p, &m, ProtocolId::Mesi).stats.store_stall_cycles
        };
        assert_eq!(run(50), run(5_000));
    }

    #[test]
    fn makespan_is_at_least_the_critical_path() {
        let p = trace_program("serialwork", RtOptions::default(), |ctx| {
            ctx.work(100_000);
        });
        let m = MachineConfig::dual_socket();
        let out = simulate(&p, &m, ProtocolId::Mesi);
        // CPI 1/2 on 100k instructions = 50k cycles minimum.
        assert!(out.stats.cycles >= m.compute_cycles(100_000));
        assert!(out.stats.instructions >= 100_000);
    }

    #[test]
    fn disaggregated_is_slower_than_dual_socket() {
        let p = sample_program();
        let dual = simulate(&p, &MachineConfig::dual_socket(), ProtocolId::Mesi);
        let disagg = simulate(&p, &MachineConfig::disaggregated(), ProtocolId::Mesi);
        assert!(
            disagg.stats.cycles > dual.stats.cycles,
            "1 µs remote accesses must hurt ({} vs {})",
            disagg.stats.cycles,
            dual.stats.cycles
        );
    }

    #[test]
    fn region_capacity_overflow_is_harmless() {
        let p = sample_program();
        let mut m = tiny_machine();
        m.cache.region_capacity = 1;
        let mesi = simulate(&p, &m, ProtocolId::Mesi);
        let warden = simulate(&p, &m, ProtocolId::Warden);
        assert!(warden.stats.coherence.region_overflows > 0);
        assert_eq!(mesi.memory_image_digest, warden.memory_image_digest);
    }

    #[test]
    fn energy_params_scale_reported_energy() {
        let p = sample_program();
        let m = tiny_machine();
        let cheap = simulate_with_energy(&p, &m, ProtocolId::Mesi, &EnergyParams::default());
        let pricey = simulate_with_energy(
            &p,
            &m,
            ProtocolId::Mesi,
            &EnergyParams {
                e_dram: 100.0,
                ..EnergyParams::default()
            },
        );
        assert!(pricey.energy.in_processor_nj > cheap.energy.in_processor_nj);
        assert_eq!(pricey.stats.cycles, cheap.stats.cycles, "energy is passive");
    }

    #[test]
    fn cycle_categories_conserve_core_time() {
        // Every clock advance in the engine is classified into exactly one
        // category, so the categories must sum to the cores' total time.
        for (bench, m) in [
            ("sample", tiny_machine()),
            ("sample", MachineConfig::dual_socket()),
        ] {
            let p = sample_program();
            for proto in [ProtocolId::Msi, ProtocolId::Mesi, ProtocolId::Warden] {
                let s = simulate(&p, &m, proto).stats;
                let classified: u64 = s.cycle_breakdown().iter().map(|&(_, c)| c).sum();
                assert_eq!(
                    classified, s.core_cycles_total,
                    "{bench} {proto}: breakdown must conserve core time"
                );
            }
        }
    }

    #[test]
    fn warden_shifts_cycles_from_loads_to_compute_share() {
        // The mechanism of the speedup: WARDen removes load-stall cycles
        // (downgrade chains), leaving compute untouched.
        let p = trace_program("shift", RtOptions::default(), |ctx| {
            let xs = ctx.tabulate::<u64>(2048, 32, &|c, i| {
                c.work(10);
                i
            });
            let _ = ctx.reduce(0, 2048, 32, &|c, i| c.read(&xs, i), &|a, b| a + b, 0);
        });
        let m = tiny_machine();
        let mesi = simulate(&p, &m, ProtocolId::Mesi).stats;
        let warden = simulate(&p, &m, ProtocolId::Warden).stats;
        assert!(warden.load_cycles < mesi.load_cycles);
        assert_eq!(warden.compute_cycles, mesi.compute_cycles);
    }

    #[test]
    fn seeds_change_schedules_not_results() {
        let p = sample_program();
        let base = tiny_machine();
        let a = simulate(&p, &base.clone().with_seed(1), ProtocolId::Warden);
        let b = simulate(&p, &base.clone().with_seed(2), ProtocolId::Warden);
        assert_eq!(a.memory_image_digest, b.memory_image_digest);
        // Cycle counts may differ (different steal schedules) but stay in
        // the same ballpark.
        let ratio = a.stats.cycles as f64 / b.stats.cycles as f64;
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }
}
