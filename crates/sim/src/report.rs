//! Comparison of runs: the derived metrics each evaluation figure plots.

use crate::engine::SimOutcome;

/// Derived comparison of a WARDen run against its MESI baseline for one
/// benchmark on one machine — one column of Figures 7–11.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Benchmark name.
    pub name: String,
    /// Normalized speedup: baseline cycles / WARDen cycles (Figures 7a/8a).
    pub speedup: f64,
    /// Total processor energy savings, percent (Figures 7b/8b).
    pub total_energy_savings_pct: f64,
    /// Interconnect energy savings, percent (Figures 7b/8b).
    pub interconnect_energy_savings_pct: f64,
    /// In-processor (dynamic, non-network) energy savings, percent
    /// (Figure 12b).
    pub in_processor_energy_savings_pct: f64,
    /// Invalidations+downgrades avoided per 1000 instructions (Figure 9).
    pub inv_dg_reduced_per_kilo: f64,
    /// Share of the avoided events that were downgrades, percent
    /// (Figure 10).
    pub downgrade_share_pct: f64,
    /// Share that were invalidations, percent (Figure 10).
    pub invalidation_share_pct: f64,
    /// IPC improvement, percent (Figure 11).
    pub ipc_improvement_pct: f64,
    /// Fraction of memory accesses WARDen served in the W state (the §7.2
    /// "accesses in a WARD region" discussion).
    pub ward_serve_fraction: f64,
    /// Reconciled blocks per million cycles (the §6.2 "one block per 50,000
    /// cycles" observation).
    pub recon_blocks_per_mcycle: f64,
}

impl Comparison {
    /// Build the comparison from a MESI baseline and a WARDen run of the
    /// same program on the same machine.
    ///
    /// # Panics
    ///
    /// Panics if the runs disagree on machine or if either ran zero cycles.
    pub fn of(name: &str, mesi: &SimOutcome, warden: &SimOutcome) -> Comparison {
        assert_eq!(mesi.machine, warden.machine, "mismatched machines");
        assert!(mesi.stats.cycles > 0 && warden.stats.cycles > 0);
        let base_ipk = mesi.stats.inv_dg_per_kilo_instr();
        let ward_ipk = warden.stats.inv_dg_per_kilo_instr();
        let reduced = (base_ipk - ward_ipk).max(0.0);
        // Shares are computed from the positive parts so the two always sum
        // to 100% (a slight increase on one axis reads as a 0% share, like
        // the paper's stacked percentages).
        let dg_red = (mesi.stats.coherence.downgrades as i64
            - warden.stats.coherence.downgrades as i64)
            .max(0);
        let inv_red = (mesi.stats.coherence.invalidations as i64
            - warden.stats.coherence.invalidations as i64)
            .max(0);
        let total_red = (dg_red + inv_red).max(1) as f64;
        Comparison {
            name: name.to_owned(),
            speedup: mesi.stats.cycles as f64 / warden.stats.cycles as f64,
            total_energy_savings_pct: warden.energy.total_savings_vs(&mesi.energy),
            interconnect_energy_savings_pct: warden.energy.interconnect_savings_vs(&mesi.energy),
            in_processor_energy_savings_pct: warden.energy.in_processor_savings_vs(&mesi.energy),
            inv_dg_reduced_per_kilo: reduced,
            downgrade_share_pct: 100.0 * dg_red as f64 / total_red,
            invalidation_share_pct: 100.0 * inv_red as f64 / total_red,
            ipc_improvement_pct: 100.0 * (warden.stats.ipc() / mesi.stats.ipc() - 1.0),
            ward_serve_fraction: warden.stats.ward_serve_fraction(),
            recon_blocks_per_mcycle: warden.stats.coherence.recon_blocks as f64 * 1e6
                / warden.stats.cycles as f64,
        }
    }
}

/// Geometric mean of the speedups of a set of comparisons (the paper's MEAN
/// bars use the arithmetic mean of normalized speedups; both are reported by
/// the harness).
pub fn geomean_speedup(rows: &[Comparison]) -> f64 {
    if rows.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = rows.iter().map(|r| r.speedup.ln()).sum();
    (log_sum / rows.len() as f64).exp()
}

/// Arithmetic mean of an extracted metric.
pub fn mean(rows: &[Comparison], f: impl Fn(&Comparison) -> f64) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    rows.iter().map(f).sum::<f64>() / rows.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::EnergyBreakdown;
    use crate::stats::SimStats;
    use warden_coherence::ProtocolId;
    use warden_mem::Memory;

    fn outcome(cycles: u64, instrs: u64, inv: u64, dg: u64) -> SimOutcome {
        let mut stats = SimStats {
            cycles,
            instructions: instrs,
            ..SimStats::default()
        };
        stats.coherence.invalidations = inv;
        stats.coherence.downgrades = dg;
        SimOutcome {
            protocol: ProtocolId::Mesi,
            machine: "m".into(),
            stats,
            energy: EnergyBreakdown {
                interconnect_nj: 100.0,
                in_processor_nj: 200.0,
                static_nj: 50.0,
            },
            memory_image_digest: 0,
            final_memory: Memory::new(),
            region_peak: 0,
            violations: Vec::new(),
            obs: None,
            lane_report: None,
        }
    }

    #[test]
    fn speedup_is_cycle_ratio() {
        let mesi = outcome(2000, 1000, 100, 100);
        let warden = outcome(1000, 1000, 10, 10);
        let c = Comparison::of("x", &mesi, &warden);
        assert!((c.speedup - 2.0).abs() < 1e-9);
        // (200-20)/1000 instr = 180 per 1000.
        assert!((c.inv_dg_reduced_per_kilo - 180.0).abs() < 1e-9);
        assert!((c.downgrade_share_pct - 50.0).abs() < 1e-9);
    }

    #[test]
    fn geomean_of_equal_speedups() {
        let mesi = outcome(3000, 1000, 0, 0);
        let warden = outcome(1000, 1000, 0, 0);
        let c = Comparison::of("x", &mesi, &warden);
        let g = geomean_speedup(&[c.clone(), c]);
        assert!((g - 3.0).abs() < 1e-9);
    }

    #[test]
    fn mean_extracts_metric() {
        let mesi = outcome(2000, 1000, 10, 30);
        let warden = outcome(1000, 1000, 0, 0);
        let c = Comparison::of("x", &mesi, &warden);
        assert!((mean(&[c], |r| r.speedup) - 2.0).abs() < 1e-9);
        assert_eq!(mean(&[], |r| r.speedup), 0.0);
    }
}
