//! The true-sharing ping-pong microbenchmark of paper Figure 6, used to
//! validate the simulator's latency model (Table 1).
//!
//! ```c
//! /* Ran on two separate cores (myself and partner) */
//! while (iterations--) {
//!     while (buf != partnerID) ;
//!     buf = myID;
//! }
//! ```
//!
//! Each iteration is one cache-line hand-off: the waiting thread's spin load
//! misses (the line is dirty in the partner's cache), then its store takes
//! the line back. We drive the coherence system directly with that
//! alternating pattern and report cycles per iteration.

use crate::config::MachineConfig;
use warden_coherence::{CoherenceSystem, CoreId, ProtocolId};
use warden_mem::Addr;

/// Placement of the two hardware threads (Table 1's three scenarios).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// Two hardware threads of one core (shared L1).
    SameCore,
    /// Two cores of one socket.
    SameSocket,
    /// Cores on different sockets.
    DiffSocket,
}

impl Placement {
    /// The core ids the two threads run on.
    pub fn cores(self, machine: &MachineConfig) -> (CoreId, CoreId) {
        match self {
            Placement::SameCore => (0, 0),
            Placement::SameSocket => (0, 1),
            Placement::DiffSocket => {
                assert!(
                    machine.topo.num_sockets() >= 2,
                    "DiffSocket needs at least two sockets"
                );
                (0, machine.topo.cores_per_socket())
            }
        }
    }
}

/// Run the ping-pong kernel for `iterations` hand-offs and return the mean
/// cycles per iteration.
///
/// # Example
///
/// ```
/// use warden_sim::{pingpong, MachineConfig, Placement};
///
/// let m = MachineConfig::dual_socket();
/// let same = pingpong(&m, Placement::SameSocket, 1000);
/// let diff = pingpong(&m, Placement::DiffSocket, 1000);
/// assert!(diff > 2.0 * same, "cross-socket hand-offs are far slower");
/// ```
pub fn pingpong(machine: &MachineConfig, placement: Placement, iterations: u64) -> f64 {
    assert!(iterations > 0, "need at least one iteration");
    let mut sys = CoherenceSystem::new(machine.topo, machine.lat, machine.cache, ProtocolId::Mesi);
    let (a, b) = placement.cores(machine);
    let buf = Addr(4096);
    // Warm up: both threads have touched the line once.
    sys.store(a, buf, &[0xA0]);
    sys.store(b, buf, &[0xB0]);
    let mut cycles = 0u64;
    let mut me = a;
    let mut other = b;
    for _ in 0..iterations {
        // The spin load that finally observes the partner's value: it misses
        // because the partner holds the line M.
        cycles += sys.load(me, buf, 1);
        // Publish my id: takes the line for writing (store latency is on the
        // critical path here — the partner spins on it).
        cycles += sys.store(me, buf, &[me as u8]);
        std::mem::swap(&mut me, &mut other);
    }
    cycles as f64 / iterations as f64
}

/// One row of Table 1: scenario name, the paper's real-hardware and Sniper
/// latencies (cycles/iteration), and our simulator's measurement.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Scenario label.
    pub scenario: &'static str,
    /// The paper's measurement on real hardware.
    pub paper_real_hw: f64,
    /// The paper's Sniper measurement.
    pub paper_sniper: f64,
    /// Our simulator's measurement.
    pub measured: f64,
}

/// Regenerate Table 1 (validation of the timing model).
pub fn table1(machine: &MachineConfig, iterations: u64) -> Vec<Table1Row> {
    vec![
        Table1Row {
            scenario: "Same core",
            paper_real_hw: 8.738,
            paper_sniper: 11.21,
            measured: pingpong(machine, Placement::SameCore, iterations),
        },
        Table1Row {
            scenario: "Diff. core, same socket",
            paper_real_hw: 479.68,
            paper_sniper: 286.01,
            measured: pingpong(machine, Placement::SameSocket, iterations),
        },
        Table1Row {
            scenario: "Diff. core, diff. socket",
            paper_real_hw: 1163.23,
            paper_sniper: 1213.59,
            measured: pingpong(machine, Placement::DiffSocket, iterations),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_core_is_l1_speed() {
        let m = MachineConfig::dual_socket();
        let c = pingpong(&m, Placement::SameCore, 100);
        // Two L1 accesses per iteration.
        assert!(c <= 3.0 * m.lat.l1 as f64, "same-core iteration {c}");
    }

    #[test]
    fn scenario_ordering_matches_table1() {
        let m = MachineConfig::dual_socket();
        let same_core = pingpong(&m, Placement::SameCore, 200);
        let same_socket = pingpong(&m, Placement::SameSocket, 200);
        let diff_socket = pingpong(&m, Placement::DiffSocket, 200);
        assert!(same_core < same_socket);
        assert!(same_socket < diff_socket);
    }

    #[test]
    fn within_2x_of_sniper() {
        // The validation bar the paper itself meets: correct ordering and
        // same ballpark as the reference simulator.
        let m = MachineConfig::dual_socket();
        for row in table1(&m, 500) {
            let ratio = row.measured / row.paper_sniper;
            assert!(
                (0.5..2.0).contains(&ratio),
                "{}: measured {} vs sniper {}",
                row.scenario,
                row.measured,
                row.paper_sniper
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least two sockets")]
    fn diff_socket_needs_two_sockets() {
        let m = MachineConfig::single_socket();
        pingpong(&m, Placement::DiffSocket, 10);
    }
}
