//! McPAT-lite: an event-energy model.
//!
//! The paper measures energy with McPAT inside Sniper and reports
//! *percentage savings*. Percentages depend on event-count ratios rather
//! than absolute joules, so an event-energy model with published-ballpark
//! per-event costs reproduces the comparisons. All constants are documented
//! and adjustable.

use crate::stats::SimStats;
use warden_coherence::Topology;

/// Per-event and static energy parameters (nanojoules / watts).
///
/// Defaults are 22 nm-class ballpark figures: tens of picojoules for small
/// SRAM arrays, ~1 nJ for a large LLC slice access, ~15–20 nJ for DRAM, and
/// order-of-magnitude costlier messages across the inter-socket link than
/// within the on-chip network.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyParams {
    /// Core dynamic energy per retired instruction (nJ).
    pub e_instr: f64,
    /// L1 access (nJ).
    pub e_l1: f64,
    /// L2 access (nJ).
    pub e_l2: f64,
    /// LLC slice access (nJ).
    pub e_llc: f64,
    /// Directory lookup (nJ).
    pub e_dir: f64,
    /// DRAM access (nJ per 64 B block).
    pub e_dram: f64,
    /// Control message within a socket (nJ).
    pub e_ctrl_intra: f64,
    /// Control message crossing the inter-socket link (nJ).
    pub e_ctrl_inter: f64,
    /// 64 B data message within a socket (nJ).
    pub e_data_intra: f64,
    /// 64 B data message crossing the inter-socket link (nJ).
    pub e_data_inter: f64,
    /// One retried remote-link transaction under fault injection (nJ): a
    /// timed-out request's wasted traversal plus the retry handshake.
    pub e_link_retry: f64,
    /// Static power per core (W).
    pub p_static_core: f64,
    /// Static power per socket uncore (W).
    pub p_static_uncore: f64,
    /// Clock frequency (GHz) — converts static watts to nJ/cycle.
    pub freq_ghz: f64,
}

impl Default for EnergyParams {
    fn default() -> EnergyParams {
        EnergyParams {
            e_instr: 0.07,
            e_l1: 0.02,
            e_l2: 0.06,
            e_llc: 0.8,
            e_dir: 0.1,
            e_dram: 18.0,
            e_ctrl_intra: 0.08,
            e_ctrl_inter: 2.0,
            e_data_intra: 0.6,
            e_data_inter: 8.0,
            e_link_retry: 10.0,
            p_static_core: 0.8,
            p_static_uncore: 2.0,
            freq_ghz: 3.3,
        }
    }
}

/// Energy totals for one run, split the way the paper's figures are
/// (interconnect vs. total processor).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Network/coherence-message energy (nJ) — "Interconnect" in Figures 7/8,
    /// "Network" in Figure 12.
    pub interconnect_nj: f64,
    /// Core + cache + DRAM dynamic energy (nJ) — "In-Processor" of Figure 12.
    pub in_processor_nj: f64,
    /// Static (leakage + clock) energy over the run (nJ).
    pub static_nj: f64,
}

impl EnergyBreakdown {
    /// Total processor energy: everything (the paper's "Total Processor").
    pub fn total_nj(&self) -> f64 {
        self.interconnect_nj + self.in_processor_nj + self.static_nj
    }

    /// Percent saved relative to a baseline (positive = this run is better).
    pub fn total_savings_vs(&self, baseline: &EnergyBreakdown) -> f64 {
        100.0 * (1.0 - self.total_nj() / baseline.total_nj())
    }

    /// Percent interconnect energy saved relative to a baseline.
    pub fn interconnect_savings_vs(&self, baseline: &EnergyBreakdown) -> f64 {
        100.0 * (1.0 - self.interconnect_nj / baseline.interconnect_nj)
    }

    /// Percent in-processor (dynamic, non-network) energy saved.
    pub fn in_processor_savings_vs(&self, baseline: &EnergyBreakdown) -> f64 {
        100.0 * (1.0 - self.in_processor_nj / baseline.in_processor_nj)
    }
}

/// Compute the energy of a finished run from its statistics.
pub fn energy_of(stats: &SimStats, topo: Topology, p: &EnergyParams) -> EnergyBreakdown {
    let c = &stats.coherence;
    let accesses = c.accesses() as f64;
    let l1_probes = accesses;
    let l2_probes = accesses - c.l1_hits as f64;
    let llc_probes = (c.llc_hits + c.llc_misses) as f64;
    let dram = (c.dram_reads + c.dram_writes) as f64;

    let in_processor = stats.instructions as f64 * p.e_instr
        + l1_probes * p.e_l1
        + l2_probes * p.e_l2
        + llc_probes * p.e_llc
        + c.dir_lookups as f64 * p.e_dir
        + dram * p.e_dram;

    let interconnect = c.ctrl_intra as f64 * p.e_ctrl_intra
        + c.ctrl_inter as f64 * p.e_ctrl_inter
        + c.data_intra as f64 * p.e_data_intra
        + c.data_inter as f64 * p.e_data_inter
        + stats.faults.link_retries as f64 * p.e_link_retry;

    let static_nj_per_cycle = (topo.num_cores() as f64 * p.p_static_core
        + topo.num_sockets() as f64 * p.p_static_uncore)
        / p.freq_ghz;
    let static_nj = stats.cycles as f64 * static_nj_per_cycle;

    EnergyBreakdown {
        interconnect_nj: interconnect,
        in_processor_nj: in_processor,
        static_nj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warden_coherence::CoherenceStats;

    fn stats(cycles: u64, instrs: u64, f: impl FnOnce(&mut CoherenceStats)) -> SimStats {
        let mut s = SimStats {
            cycles,
            instructions: instrs,
            ..SimStats::default()
        };
        f(&mut s.coherence);
        s
    }

    #[test]
    fn fewer_messages_means_less_interconnect_energy() {
        let topo = Topology::new(2, 12);
        let p = EnergyParams::default();
        let noisy = stats(1000, 100, |c| {
            c.ctrl_inter = 100;
            c.data_inter = 50;
        });
        let quiet = stats(1000, 100, |c| {
            c.ctrl_inter = 10;
            c.data_inter = 5;
        });
        let en = energy_of(&noisy, topo, &p);
        let eq = energy_of(&quiet, topo, &p);
        assert!(eq.interconnect_nj < en.interconnect_nj);
        assert!(eq.interconnect_savings_vs(&en) > 80.0);
    }

    #[test]
    fn shorter_runs_save_static_energy() {
        let topo = Topology::new(1, 12);
        let p = EnergyParams::default();
        let slow = energy_of(&stats(2000, 100, |_| {}), topo, &p);
        let fast = energy_of(&stats(1000, 100, |_| {}), topo, &p);
        assert!(fast.static_nj < slow.static_nj);
        assert!(fast.total_savings_vs(&slow) > 0.0);
    }

    #[test]
    fn link_retries_cost_interconnect_energy() {
        let topo = Topology::new(2, 12);
        let p = EnergyParams::default();
        let clean = stats(1000, 100, |_| {});
        let mut flaky = clean.clone();
        flaky.faults.link_retries = 40;
        let e_clean = energy_of(&clean, topo, &p);
        let e_flaky = energy_of(&flaky, topo, &p);
        assert!(e_flaky.interconnect_nj > e_clean.interconnect_nj);
        assert!(
            (e_flaky.interconnect_nj - e_clean.interconnect_nj - 40.0 * p.e_link_retry).abs()
                < 1e-9
        );
    }

    #[test]
    fn intersocket_messages_cost_more() {
        let p = EnergyParams::default();
        assert!(p.e_ctrl_inter > p.e_ctrl_intra);
        assert!(p.e_data_inter > p.e_data_intra);
    }

    #[test]
    fn total_is_sum_of_parts() {
        let b = EnergyBreakdown {
            interconnect_nj: 1.0,
            in_processor_nj: 2.0,
            static_nj: 3.0,
        };
        assert_eq!(b.total_nj(), 6.0);
    }
}
