//! Machine configurations for the evaluated systems (paper Table 2 and §7.3).

use crate::error::SimError;
use warden_coherence::{CacheConfig, CoherenceError, LatencyModel, Topology};

/// Full description of one simulated machine.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Human-readable name used in reports.
    pub name: String,
    /// Socket/core layout.
    pub topo: Topology,
    /// Latency model.
    pub lat: LatencyModel,
    /// Cache geometries and region-store capacity.
    pub cache: CacheConfig,
    /// Average cycles-per-instruction for non-memory work, expressed as a
    /// rational `cpi_num / cpi_den` (the default ½ models a superscalar
    /// core retiring two ALU ops per cycle).
    pub cpi_num: u64,
    /// See [`Self::cpi_num`].
    pub cpi_den: u64,
    /// Store-buffer entries per core (Skylake-class: 56). Store latency is
    /// hidden until the buffer fills (the mechanism behind the paper's
    /// Figure 10 discussion of loads vs. stores).
    pub store_buffer: usize,
    /// Outstanding store *misses* per core (write MSHRs): stores that miss
    /// the private hierarchy drain at most this many at a time, so a burst
    /// of invalidation-heavy stores eventually back-pressures the core.
    pub store_mshrs: usize,
    /// Cycles charged to a thief per steal attempt (deque CAS + bookkeeping).
    pub steal_cost: u64,
    /// Cycles an idle core waits before re-probing for work.
    pub idle_tick: u64,
    /// RNG seed for steal-victim selection (runs are deterministic given a
    /// seed).
    pub seed: u64,
}

impl MachineConfig {
    fn base(name: &str, sockets: usize, lat: LatencyModel) -> MachineConfig {
        let cores_per_socket = 12;
        MachineConfig {
            name: name.to_owned(),
            topo: Topology::new(sockets, cores_per_socket),
            lat,
            cache: CacheConfig::paper(cores_per_socket),
            cpi_num: 1,
            cpi_den: 2,
            store_buffer: 56,
            store_mshrs: 10,
            steal_cost: 120,
            idle_tick: 60,
            seed: 0xC60_2023,
        }
    }

    /// The paper's single-socket machine: 12 cores, Table 2 caches.
    pub fn single_socket() -> MachineConfig {
        MachineConfig::base("single-socket", 1, LatencyModel::xeon_gold_6126())
    }

    /// The paper's dual-socket machine: 2 × 12 cores.
    pub fn dual_socket() -> MachineConfig {
        MachineConfig::base("dual-socket", 2, LatencyModel::xeon_gold_6126())
    }

    /// The §7.3 disaggregated machine: two nodes with a 1 µs (3300-cycle)
    /// remote access time.
    pub fn disaggregated() -> MachineConfig {
        MachineConfig::base("disaggregated", 2, LatencyModel::disaggregated())
    }

    /// A hypothetical many-socket machine (§7.3's "many sockets" future).
    ///
    /// # Panics
    ///
    /// Panics if `sockets * 12 > 64` (sharer-bitmask width) or `sockets`
    /// is zero. [`Self::try_many_socket`] is the non-panicking form for
    /// callers handing over externally supplied socket counts.
    pub fn many_socket(sockets: usize) -> MachineConfig {
        MachineConfig::try_many_socket(sockets).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Self::many_socket`] behind validation: a socket count whose cores
    /// would overflow the 64-bit sharer bitmask (or a zero socket count) is
    /// a typed [`SimError`] instead of a panic — the serving layer feeds
    /// client-supplied machine descriptions through this.
    pub fn try_many_socket(sockets: usize) -> Result<MachineConfig, SimError> {
        let cores_per_socket = 12;
        let bad = |msg: String| SimError::Config(CoherenceError::BadConfig(msg));
        if sockets == 0 {
            return Err(bad("a machine needs at least one socket".into()));
        }
        let cores = sockets
            .checked_mul(cores_per_socket)
            .ok_or_else(|| bad(format!("{sockets} sockets overflow the core count")))?;
        if cores > 64 {
            return Err(bad(format!(
                "{sockets} sockets x {cores_per_socket} cores = {cores} cores exceed the \
                 64-wide sharer bitmask"
            )));
        }
        Ok(MachineConfig::base(
            &format!("{sockets}-socket"),
            sockets,
            LatencyModel::xeon_gold_6126(),
        ))
    }

    /// An arbitrary machine-space sweep point: `sockets` × `cores_per_socket`
    /// under latency model `lat`, fully validated with typed errors.
    ///
    /// Sweep drivers (the coherence atlas, `fuzzgen`) construct machines from
    /// mechanically enumerated knobs, so every extreme point — a zero or
    /// 65+ socket count, 1-core sockets, a zero-latency link — must surface
    /// as a [`SimError`] *before* [`Topology::new`]'s debug assertions can
    /// fire. 1-core sockets are legal (the paper's "many thin sockets"
    /// direction); the impossible geometries and latencies are not.
    pub fn sweep_point(
        name: &str,
        sockets: usize,
        cores_per_socket: usize,
        lat: LatencyModel,
    ) -> Result<MachineConfig, SimError> {
        let bad = |msg: String| SimError::Config(CoherenceError::BadConfig(msg));
        if sockets == 0 {
            return Err(bad("a sweep point needs at least one socket".into()));
        }
        if cores_per_socket == 0 {
            return Err(bad(
                "a sweep point needs at least one core per socket".into()
            ));
        }
        let cores = sockets
            .checked_mul(cores_per_socket)
            .ok_or_else(|| bad(format!("{sockets} sockets overflow the core count")))?;
        if cores > 64 {
            return Err(bad(format!(
                "{sockets} sockets x {cores_per_socket} cores = {cores} cores exceed the \
                 64-wide sharer bitmask"
            )));
        }
        let m = MachineConfig {
            name: name.to_owned(),
            topo: Topology::new(sockets, cores_per_socket),
            cache: CacheConfig::paper(cores_per_socket),
            ..MachineConfig::base(name, 1, lat)
        };
        m.validate()?;
        Ok(m)
    }

    /// Override the core count per socket (smaller machines simulate faster;
    /// useful for tests and examples).
    pub fn with_cores(mut self, cores_per_socket: usize) -> MachineConfig {
        self.topo = Topology::new(self.topo.num_sockets(), cores_per_socket);
        self.cache = CacheConfig {
            llc_slice: warden_mem::CacheGeometry::new(2_621_440 * cores_per_socket as u64, 20),
            ..self.cache
        };
        self
    }

    /// Override the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> MachineConfig {
        self.seed = seed;
        self
    }

    /// Total core count.
    pub fn num_cores(&self) -> usize {
        self.topo.num_cores()
    }

    /// Cycles for `n` instructions of pure compute.
    pub fn compute_cycles(&self, n: u64) -> u64 {
        (n * self.cpi_num).div_ceil(self.cpi_den)
    }

    /// A stable fingerprint over every parameter that affects a replay.
    ///
    /// Checkpoints embed this value so a snapshot taken on one machine
    /// description can never silently resume under a different one; two
    /// configurations with equal fingerprints replay identically.
    pub fn fingerprint(&self) -> u64 {
        use warden_mem::codec::{fnv1a64, Encoder};
        let mut enc = Encoder::new();
        enc.put_str(&self.name);
        enc.put_usize(self.topo.num_sockets());
        enc.put_usize(self.topo.cores_per_socket());
        for v in [
            self.lat.l1,
            self.lat.l2,
            self.lat.l3,
            self.lat.fwd,
            self.lat.intersocket,
            self.lat.dram,
            self.lat.region_instr,
            self.lat.reconcile_per_block,
        ] {
            enc.put_u64(v);
        }
        for g in [self.cache.l1, self.cache.l2, self.cache.llc_slice] {
            enc.put_u64(g.size_bytes());
            enc.put_u32(g.associativity());
        }
        enc.put_usize(self.cache.region_capacity);
        enc.put_u64(self.cache.sector_bytes);
        enc.put_u64(self.cpi_num);
        enc.put_u64(self.cpi_den);
        enc.put_usize(self.store_buffer);
        enc.put_usize(self.store_mshrs);
        enc.put_u64(self.steal_cost);
        enc.put_u64(self.idle_tick);
        enc.put_u64(self.seed);
        fnv1a64(enc.bytes())
    }

    /// Check the whole machine description for consistency: cache
    /// geometry/region/sector constraints ([`CacheConfig::validate`]),
    /// latency ordering ([`LatencyModel::validate`]), a well-defined CPI
    /// fraction, at least one store-buffer entry and write MSHR, and a
    /// non-zero idle tick (a zero tick would let an idle core spin without
    /// advancing time). All preset constructors produce valid machines —
    /// asserted by this module's tests.
    pub fn validate(&self) -> Result<(), SimError> {
        self.cache.validate()?;
        self.lat.validate()?;
        let bad = |msg: String| Err(SimError::Config(CoherenceError::BadConfig(msg)));
        if self.cpi_den == 0 {
            return bad("cpi denominator must be non-zero".into());
        }
        if self.cpi_num == 0 {
            return bad("cpi numerator must be non-zero (compute must take time)".into());
        }
        if self.store_buffer == 0 {
            return bad("store buffer needs at least one entry".into());
        }
        if self.store_mshrs == 0 {
            return bad("at least one write MSHR is required".into());
        }
        if self.idle_tick == 0 {
            return bad("idle tick must be non-zero (idle cores must advance time)".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs() {
        assert_eq!(MachineConfig::single_socket().num_cores(), 12);
        assert_eq!(MachineConfig::dual_socket().num_cores(), 24);
        assert_eq!(MachineConfig::disaggregated().lat.intersocket, 3300);
        assert_eq!(MachineConfig::many_socket(4).num_cores(), 48);
    }

    #[test]
    fn try_many_socket_splits_ok_from_typed_rejection() {
        // 5 sockets x 12 cores = 60 <= 64: the widest machine that fits.
        let m = MachineConfig::try_many_socket(5).expect("60 cores fit the bitmask");
        assert_eq!(m.num_cores(), 60);
        assert_eq!(m.name, "5-socket");
        m.validate().expect("preset validates");
        // The panicking wrapper delegates, so both paths agree.
        assert_eq!(
            MachineConfig::many_socket(5).fingerprint(),
            MachineConfig::try_many_socket(5).unwrap().fingerprint()
        );
        // 6 sockets x 12 = 72 > 64: typed error, not a panic.
        let err = MachineConfig::try_many_socket(6).unwrap_err();
        assert!(matches!(err, SimError::Config(_)));
        assert!(err.to_string().contains("sharer bitmask"), "{err}");
        // Zero sockets and overflow-sized counts are rejected the same way.
        assert!(matches!(
            MachineConfig::try_many_socket(0),
            Err(SimError::Config(_))
        ));
        assert!(matches!(
            MachineConfig::try_many_socket(usize::MAX),
            Err(SimError::Config(_))
        ));
    }

    #[test]
    #[should_panic(expected = "sharer bitmask")]
    fn many_socket_still_panics_on_overflow() {
        let _ = MachineConfig::many_socket(6);
    }

    #[test]
    fn sweep_points_cover_extremes_with_typed_errors() {
        use warden_coherence::LatencyModel;
        // 1-core sockets are a legal sweep direction, not an error.
        let thin = MachineConfig::sweep_point("4s1c", 4, 1, LatencyModel::xeon_gold_6126())
            .expect("1-core sockets are valid");
        assert_eq!(thin.num_cores(), 4);
        assert_eq!(thin.topo.cores_per_socket(), 1);
        thin.validate().unwrap();
        // The CXL-class preset flows through like any other latency model.
        let cxl = MachineConfig::sweep_point("2s2c-cxl", 2, 2, LatencyModel::cxl()).unwrap();
        assert_eq!(cxl.lat.intersocket, 600);

        let expect_bad = |r: Result<MachineConfig, SimError>, what: &str| {
            let err = r.expect_err(what);
            assert!(matches!(err, SimError::Config(_)), "{what}: {err}");
        };
        let lat = LatencyModel::xeon_gold_6126;
        expect_bad(
            MachineConfig::sweep_point("0s", 0, 4, lat()),
            "zero sockets",
        );
        expect_bad(
            MachineConfig::sweep_point("0c", 2, 0, lat()),
            "zero cores per socket",
        );
        expect_bad(
            MachineConfig::sweep_point("wide", 65, 1, lat()),
            ">64 sockets",
        );
        expect_bad(
            MachineConfig::sweep_point("dense", 8, 12, lat()),
            "96 cores exceed the sharer bitmask",
        );
        expect_bad(
            MachineConfig::sweep_point("huge", usize::MAX, 2, lat()),
            "core-count overflow",
        );
        let mut zero_link = lat();
        zero_link.intersocket = 0;
        expect_bad(
            MachineConfig::sweep_point("0link", 2, 2, zero_link),
            "zero-latency inter-socket link",
        );
        let mut zero_l1 = lat();
        zero_l1.l1 = 0;
        expect_bad(
            MachineConfig::sweep_point("0l1", 1, 2, zero_l1),
            "zero-latency l1",
        );
    }

    #[test]
    fn sweep_point_fingerprints_bind_the_geometry() {
        use warden_coherence::LatencyModel;
        let a = MachineConfig::sweep_point("p", 2, 2, LatencyModel::xeon_gold_6126()).unwrap();
        let b = MachineConfig::sweep_point("p", 4, 1, LatencyModel::xeon_gold_6126()).unwrap();
        let c = MachineConfig::sweep_point("p", 2, 2, LatencyModel::cxl()).unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(
            a.fingerprint(),
            MachineConfig::sweep_point("p", 2, 2, LatencyModel::xeon_gold_6126())
                .unwrap()
                .fingerprint()
        );
    }

    #[test]
    fn compute_cycles_rounds_up() {
        let m = MachineConfig::single_socket();
        assert_eq!(m.compute_cycles(4), 2);
        assert_eq!(m.compute_cycles(5), 3);
        assert_eq!(m.compute_cycles(0), 0);
    }

    #[test]
    fn with_cores_scales_llc() {
        let m = MachineConfig::single_socket().with_cores(4);
        assert_eq!(m.num_cores(), 4);
        assert_eq!(m.cache.llc_slice.size_bytes(), 4 * 2_621_440);
    }

    #[test]
    fn presets_validate() {
        for m in [
            MachineConfig::single_socket(),
            MachineConfig::dual_socket(),
            MachineConfig::disaggregated(),
            MachineConfig::many_socket(4),
            MachineConfig::dual_socket().with_cores(2),
        ] {
            m.validate().unwrap_or_else(|e| panic!("{}: {e}", m.name));
        }
    }

    #[test]
    fn fingerprints_distinguish_machines_and_are_stable() {
        let a = MachineConfig::dual_socket();
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
        assert_ne!(
            a.fingerprint(),
            MachineConfig::single_socket().fingerprint()
        );
        assert_ne!(
            a.fingerprint(),
            MachineConfig::disaggregated().fingerprint()
        );
        assert_ne!(a.fingerprint(), a.clone().with_seed(7).fingerprint());
        assert_ne!(a.fingerprint(), a.clone().with_cores(2).fingerprint());
        let mut b = a.clone();
        b.store_mshrs -= 1;
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn each_bad_field_is_rejected() {
        let expect_bad = |mutate: &dyn Fn(&mut MachineConfig), what: &str| {
            let mut m = MachineConfig::single_socket();
            mutate(&mut m);
            assert!(
                matches!(m.validate(), Err(SimError::Config(_))),
                "{what} should be rejected"
            );
        };
        expect_bad(&|m| m.cpi_den = 0, "zero cpi denominator");
        expect_bad(&|m| m.cpi_num = 0, "zero cpi numerator");
        expect_bad(&|m| m.store_buffer = 0, "zero store buffer");
        expect_bad(&|m| m.store_mshrs = 0, "zero write MSHRs");
        expect_bad(&|m| m.idle_tick = 0, "zero idle tick");
        expect_bad(&|m| m.cache.region_capacity = 0, "zero region capacity");
        expect_bad(&|m| m.cache.sector_bytes = 3, "non-power-of-two sector");
        expect_bad(&|m| m.cache.sector_bytes = 128, "sector wider than a block");
        expect_bad(&|m| m.lat.l2 = m.lat.l1, "l1 !< l2 ordering");
        expect_bad(&|m| m.lat.l3 = m.lat.l2, "l2 !< l3 ordering");
        expect_bad(&|m| m.lat.dram = 10, "dram below l3");
        expect_bad(&|m| m.lat.intersocket = 10, "intersocket below l3");
        expect_bad(&|m| m.lat.l1 = 0, "zero l1 latency");
        expect_bad(
            &|m| {
                m.cache.l2 = warden_mem::CacheGeometry::new(512, 2);
                m.cache.l1 = warden_mem::CacheGeometry::new(1024, 2);
            },
            "L1 bigger than inclusive L2",
        );
    }
}
