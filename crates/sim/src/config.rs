//! Machine configurations for the evaluated systems (paper Table 2 and §7.3).

use warden_coherence::{CacheConfig, LatencyModel, Topology};

/// Full description of one simulated machine.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Human-readable name used in reports.
    pub name: String,
    /// Socket/core layout.
    pub topo: Topology,
    /// Latency model.
    pub lat: LatencyModel,
    /// Cache geometries and region-store capacity.
    pub cache: CacheConfig,
    /// Average cycles-per-instruction for non-memory work, expressed as a
    /// rational `cpi_num / cpi_den` (the default ½ models a superscalar
    /// core retiring two ALU ops per cycle).
    pub cpi_num: u64,
    /// See [`Self::cpi_num`].
    pub cpi_den: u64,
    /// Store-buffer entries per core (Skylake-class: 56). Store latency is
    /// hidden until the buffer fills (the mechanism behind the paper's
    /// Figure 10 discussion of loads vs. stores).
    pub store_buffer: usize,
    /// Outstanding store *misses* per core (write MSHRs): stores that miss
    /// the private hierarchy drain at most this many at a time, so a burst
    /// of invalidation-heavy stores eventually back-pressures the core.
    pub store_mshrs: usize,
    /// Cycles charged to a thief per steal attempt (deque CAS + bookkeeping).
    pub steal_cost: u64,
    /// Cycles an idle core waits before re-probing for work.
    pub idle_tick: u64,
    /// RNG seed for steal-victim selection (runs are deterministic given a
    /// seed).
    pub seed: u64,
}

impl MachineConfig {
    fn base(name: &str, sockets: usize, lat: LatencyModel) -> MachineConfig {
        let cores_per_socket = 12;
        MachineConfig {
            name: name.to_owned(),
            topo: Topology::new(sockets, cores_per_socket),
            lat,
            cache: CacheConfig::paper(cores_per_socket),
            cpi_num: 1,
            cpi_den: 2,
            store_buffer: 56,
            store_mshrs: 10,
            steal_cost: 120,
            idle_tick: 60,
            seed: 0xC60_2023,
        }
    }

    /// The paper's single-socket machine: 12 cores, Table 2 caches.
    pub fn single_socket() -> MachineConfig {
        MachineConfig::base("single-socket", 1, LatencyModel::xeon_gold_6126())
    }

    /// The paper's dual-socket machine: 2 × 12 cores.
    pub fn dual_socket() -> MachineConfig {
        MachineConfig::base("dual-socket", 2, LatencyModel::xeon_gold_6126())
    }

    /// The §7.3 disaggregated machine: two nodes with a 1 µs (3300-cycle)
    /// remote access time.
    pub fn disaggregated() -> MachineConfig {
        MachineConfig::base("disaggregated", 2, LatencyModel::disaggregated())
    }

    /// A hypothetical many-socket machine (§7.3's "many sockets" future).
    ///
    /// # Panics
    ///
    /// Panics if `sockets * 12 > 64` (sharer-bitmask width).
    pub fn many_socket(sockets: usize) -> MachineConfig {
        MachineConfig::base(&format!("{sockets}-socket"), sockets, LatencyModel::xeon_gold_6126())
    }

    /// Override the core count per socket (smaller machines simulate faster;
    /// useful for tests and examples).
    pub fn with_cores(mut self, cores_per_socket: usize) -> MachineConfig {
        self.topo = Topology::new(self.topo.num_sockets(), cores_per_socket);
        self.cache = CacheConfig {
            llc_slice: warden_mem::CacheGeometry::new(
                2_621_440 * cores_per_socket as u64,
                20,
            ),
            ..self.cache
        };
        self
    }

    /// Override the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> MachineConfig {
        self.seed = seed;
        self
    }

    /// Total core count.
    pub fn num_cores(&self) -> usize {
        self.topo.num_cores()
    }

    /// Cycles for `n` instructions of pure compute.
    pub fn compute_cycles(&self, n: u64) -> u64 {
        (n * self.cpi_num).div_ceil(self.cpi_den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs() {
        assert_eq!(MachineConfig::single_socket().num_cores(), 12);
        assert_eq!(MachineConfig::dual_socket().num_cores(), 24);
        assert_eq!(MachineConfig::disaggregated().lat.intersocket, 3300);
        assert_eq!(MachineConfig::many_socket(4).num_cores(), 48);
    }

    #[test]
    fn compute_cycles_rounds_up() {
        let m = MachineConfig::single_socket();
        assert_eq!(m.compute_cycles(4), 2);
        assert_eq!(m.compute_cycles(5), 3);
        assert_eq!(m.compute_cycles(0), 0);
    }

    #[test]
    fn with_cores_scales_llc() {
        let m = MachineConfig::single_socket().with_cores(4);
        assert_eq!(m.num_cores(), 4);
        assert_eq!(m.cache.llc_slice.size_bytes(), 4 * 2_621_440);
    }
}
