//! Typed errors for recoverable misuse of the simulator.

use std::fmt;
use warden_coherence::CoherenceError;

/// A rejected simulation request.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The machine configuration is inconsistent (bad cache geometry,
    /// implausible latency ordering, zero CPI denominator, …).
    Config(CoherenceError),
    /// A fault plan's parameters are out of range (see the message).
    BadFaultPlan(String),
    /// The replay was cooperatively cancelled through its
    /// [`crate::CancelToken`] before completing.
    Cancelled {
        /// Scheduler steps executed before the cancellation was observed.
        steps: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "invalid machine configuration: {e}"),
            SimError::BadFaultPlan(msg) => write!(f, "invalid fault plan: {msg}"),
            SimError::Cancelled { steps } => {
                write!(f, "replay cancelled after {steps} scheduler steps")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Config(e) => Some(e),
            SimError::BadFaultPlan(_) | SimError::Cancelled { .. } => None,
        }
    }
}

impl From<CoherenceError> for SimError {
    fn from(e: CoherenceError) -> SimError {
        SimError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_wraps_the_cause() {
        let e = SimError::from(CoherenceError::BadConfig("region capacity".into()));
        assert!(e.to_string().contains("invalid machine configuration"));
        assert!(e.to_string().contains("region capacity"));
        let e = SimError::BadFaultPlan("spike probability 2 outside [0, 1]".into());
        assert!(e.to_string().contains("spike probability"));
    }
}
