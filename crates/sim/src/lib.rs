//! The deterministic multicore timing simulator (phase 2).
//!
//! This crate stands in for the paper's Sniper-based prototype (§6.2): it
//! replays a fork-join trace captured by `warden-rt` on a model of the
//! paper's machine — per-core private L1/L2, shared per-socket LLC slices
//! with directory coherence from `warden-coherence`, a work-stealing
//! scheduler, a finite store buffer that hides store latency, and a
//! McPAT-style event-energy model.
//!
//! Machine presets follow the paper: [`MachineConfig::single_socket`],
//! [`MachineConfig::dual_socket`] (Table 2),
//! [`MachineConfig::disaggregated`] (§7.3, 1 µs remote access), and
//! [`MachineConfig::many_socket`]. The [`pingpong`] module regenerates
//! Table 1's validation.
//!
//! # Example
//!
//! ```
//! use warden_rt::{trace_program, RtOptions};
//! use warden_sim::{simulate, MachineConfig};
//! use warden_coherence::ProtocolId;
//!
//! let program = trace_program("demo", RtOptions::default(), |ctx| {
//!     let xs = ctx.tabulate::<u64>(256, 32, &|_c, i| i);
//!     let _ = ctx.reduce(0, 256, 32, &|c, i| c.read(&xs, i), &|a, b| a + b, 0);
//! });
//! let machine = MachineConfig::dual_socket().with_cores(2);
//! let mesi = simulate(&program, &machine, ProtocolId::Mesi);
//! let warden = simulate(&program, &machine, ProtocolId::Warden);
//! // Same answer, no more coherence penalties than the baseline.
//! assert_eq!(mesi.memory_image_digest, warden.memory_image_digest);
//! assert!(warden.stats.coherence.inv_plus_dg() <= mesi.stats.coherence.inv_plus_dg());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cancel;
pub mod checkpoint;
mod config;
mod energy;
mod engine;
mod error;
mod faults;
mod lanes;
mod obs;
pub mod pingpong;
mod report;
mod stats;

pub use cancel::CancelToken;
pub use checkpoint::{CheckpointError, CheckpointStore};
pub use config::MachineConfig;
pub use energy::{energy_of, EnergyBreakdown, EnergyParams};
pub use engine::{
    simulate, simulate_with_energy, simulate_with_options, try_simulate, SimEngine, SimOptions,
    SimOutcome, CANCEL_CHECK_EVENTS,
};
pub use error::SimError;
pub use faults::{FaultPlan, FaultStats};
pub use lanes::{LaneReport, LaneSet, LaneStats, MergeKey};
pub use obs::{
    EpochSummary, ObsReport, RegionSpan, SimEvent, TimedEvent, DEFAULT_EPOCH_SHIFT,
    MAX_TIMELINE_EVENTS,
};
pub use pingpong::{pingpong, table1, Placement, Table1Row};
pub use report::{geomean_speedup, mean, Comparison};
pub use stats::SimStats;
