//! Seeded, deterministic fault injection for replay runs.
//!
//! A [`FaultPlan`] describes a campaign of stress events injected while the
//! engine replays a trace:
//!
//! * **Region-CAM exhaustion storms** — decoy WARD regions at addresses the
//!   program never touches periodically fill the directory's region CAM, so
//!   real Add-Region instructions overflow into the safe MESI-fallback path.
//! * **Forced mid-region reconciliations** — random address ranges are
//!   reconciled on demand while their regions are still active (the blocks
//!   re-enter W on their next access).
//! * **Latency spikes** — random memory accesses stall for extra cycles
//!   (modelling contention the timing model doesn't otherwise capture).
//! * **Degraded remote link** — for windows of the run, every transaction
//!   that crossed the remote link (latency at or above the machine's
//!   inter-socket figure, e.g. every remote access of the disaggregated
//!   config) times out and retries with exponential backoff; retry and
//!   backoff cycles are accounted explicitly in [`FaultStats`] and priced by
//!   the energy model's `e_link_retry`.
//! * **ProtocolId mutations** — deliberate protocol defects
//!   ([`ProtocolMutation`]) the invariant checker must detect.
//!
//! Everything is driven by one private [`SmallRng`] seeded from the plan, so
//! a `(program, machine, plan)` triple replays identically. A plan without
//! mutations is *benign*: it perturbs schedules, latencies and statistics
//! but never the final memory image (the engine's tests assert bit-identical
//! images against fault-free runs).

use crate::config::MachineConfig;
use crate::error::SimError;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use warden_coherence::{CoherenceSystem, ProtocolId, ProtocolMutation, RegionId};
use warden_mem::codec::{CodecError, Decoder, Encoder};
use warden_mem::{Addr, PAGE_SIZE};

/// Base address of the decoy regions used for CAM-exhaustion storms; far
/// above any address the trace runtime allocates, so decoys never alias
/// program data.
const DECOY_BASE: u64 = 1 << 45;

/// Most decoy regions one storm will pin (bounds the work of releasing
/// them; the paper's CAM holds 1024 entries).
const MAX_DECOYS_PER_STORM: u64 = 2048;

/// Description of one deterministic fault-injection campaign.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed of the injector's private RNG (independent of the machine's
    /// scheduling seed).
    pub seed: u64,
    /// Every this-many Add-Region instructions, flood the region CAM with
    /// decoy regions until it overflows (0 disables storms).
    pub cam_storm_period: u64,
    /// Memory accesses a CAM storm lasts before the decoys are released.
    pub cam_storm_len: u64,
    /// Every this-many memory accesses, force-reconcile a random page range
    /// of the program's address space (0 disables).
    pub forced_reconcile_period: u64,
    /// Pages per forced reconciliation walk.
    pub forced_reconcile_pages: u64,
    /// Per-access probability of a latency spike, in `[0, 1]`.
    pub spike_prob: f64,
    /// Extra stall cycles one spike costs.
    pub spike_cycles: u64,
    /// Per-remote-access probability that the remote link enters a degraded
    /// window, in `[0, 1]`.
    pub link_degrade_prob: f64,
    /// Memory accesses a degraded-link window lasts.
    pub link_degrade_len: u64,
    /// Cycles a remote transaction waits before timing out during a
    /// degraded window.
    pub link_timeout: u64,
    /// Most retries one degraded transaction performs (at least 1 is
    /// always performed while the link is degraded).
    pub link_max_retries: u32,
    /// Backoff cycles before the first retry; doubles per retry.
    pub link_backoff_base: u64,
    /// ProtocolId defects to install (empty for a benign plan).
    pub mutations: Vec<ProtocolMutation>,
}

impl FaultPlan {
    /// A benign plan exercising every non-mutating fault with moderate
    /// intensity: storms, forced reconciliations, spikes and a flaky link,
    /// but no protocol defects — the final memory image must match a
    /// fault-free run bit for bit.
    pub fn benign(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            cam_storm_period: 3,
            cam_storm_len: 400,
            forced_reconcile_period: 900,
            forced_reconcile_pages: 4,
            spike_prob: 0.01,
            spike_cycles: 800,
            link_degrade_prob: 0.02,
            link_degrade_len: 200,
            link_timeout: 2_000,
            link_max_retries: 4,
            link_backoff_base: 500,
            mutations: Vec::new(),
        }
    }

    /// A plan that injects nothing but the given protocol defect (for
    /// checker-detection tests).
    pub fn mutation_only(seed: u64, m: ProtocolMutation) -> FaultPlan {
        FaultPlan {
            cam_storm_period: 0,
            forced_reconcile_period: 0,
            spike_prob: 0.0,
            link_degrade_prob: 0.0,
            mutations: vec![m],
            ..FaultPlan::benign(seed)
        }
    }

    /// Add a protocol defect to the plan.
    pub fn with_mutation(mut self, m: ProtocolMutation) -> FaultPlan {
        self.mutations.push(m);
        self
    }

    /// Whether the plan corrupts protocol semantics (mutated runs must not
    /// be held to image-equality).
    pub fn is_benign(&self) -> bool {
        self.mutations.is_empty()
    }

    /// Check the plan's parameters for plausibility: probabilities in
    /// `[0, 1]`, bounded retries, and non-zero windows for enabled faults.
    pub fn validate(&self) -> Result<(), SimError> {
        let bad = |msg: String| Err(SimError::BadFaultPlan(msg));
        if !(0.0..=1.0).contains(&self.spike_prob) {
            return bad(format!(
                "spike probability {} outside [0, 1]",
                self.spike_prob
            ));
        }
        if !(0.0..=1.0).contains(&self.link_degrade_prob) {
            return bad(format!(
                "link degrade probability {} outside [0, 1]",
                self.link_degrade_prob
            ));
        }
        if self.link_max_retries == 0 || self.link_max_retries > 16 {
            return bad(format!(
                "link_max_retries {} outside 1..=16",
                self.link_max_retries
            ));
        }
        if self.cam_storm_period > 0 && self.cam_storm_len == 0 {
            return bad("cam_storm_len must be non-zero when storms are enabled".into());
        }
        if self.forced_reconcile_period > 0 && self.forced_reconcile_pages == 0 {
            return bad("forced_reconcile_pages must be non-zero when enabled".into());
        }
        if self.link_degrade_prob > 0.0 && self.link_degrade_len == 0 {
            return bad("link_degrade_len must be non-zero when the link can degrade".into());
        }
        Ok(())
    }
}

/// Counters for everything the injector did, accounted separately from the
/// regular timing categories (`stall_cycles` is the eighth entry of
/// [`crate::SimStats::cycle_breakdown`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Latency spikes injected.
    pub latency_spikes: u64,
    /// CAM-exhaustion storms started.
    pub cam_storms: u64,
    /// Decoy regions pinned across all storms.
    pub decoy_regions: u64,
    /// Forced mid-region reconciliation walks performed.
    pub forced_reconciles: u64,
    /// Degraded-link windows entered.
    pub link_degrade_windows: u64,
    /// Remote-transaction timeouts (each causes one retry).
    pub link_timeouts: u64,
    /// Remote-transaction retries performed.
    pub link_retries: u64,
    /// Cycles spent waiting for timed-out remote transactions.
    pub timeout_cycles: u64,
    /// Cycles spent in retry backoff.
    pub backoff_cycles: u64,
    /// Total extra stall cycles injected into core clocks (spikes +
    /// timeouts + backoff + forced-reconciliation walks). Every injected
    /// cycle is classified here and nowhere else, keeping the engine's
    /// cycle-conservation invariant intact.
    pub stall_cycles: u64,
}

/// Every [`FaultStats`] counter in declaration order — shared by the encode
/// and decode macros so a newly added counter fails to compile unless it is
/// wired into both.
macro_rules! for_each_fault_counter {
    ($m:ident, $($args:tt)*) => {
        $m!(
            $($args)*:
            latency_spikes,
            cam_storms,
            decoy_regions,
            forced_reconciles,
            link_degrade_windows,
            link_timeouts,
            link_retries,
            timeout_cycles,
            backoff_cycles,
            stall_cycles,
        );
    };
}

impl FaultStats {
    /// Serialize every counter, in declaration order, for a checkpoint.
    pub(crate) fn encode_into(&self, enc: &mut Encoder) {
        macro_rules! put {
            ($self:ident, $enc:ident: $($f:ident),* $(,)?) => {
                $( $enc.put_u64($self.$f); )*
            };
        }
        for_each_fault_counter!(put, self, enc);
    }

    /// Decode counters serialized by [`Self::encode_into`].
    pub(crate) fn decode_from(dec: &mut Decoder<'_>) -> Result<FaultStats, CodecError> {
        let mut s = FaultStats::default();
        macro_rules! take {
            ($s:ident, $dec:ident: $($f:ident),* $(,)?) => {
                $( $s.$f = $dec.take_u64()?; )*
            };
        }
        for_each_fault_counter!(take, s, dec);
        Ok(s)
    }

    /// Every counter as `(name, value)` pairs in declaration order, for
    /// golden-stats snapshots.
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        macro_rules! list {
            ($self:ident: $($f:ident),* $(,)?) => {
                return vec![ $( (stringify!($f), $self.$f) ),* ];
            };
        }
        for_each_fault_counter!(list, self);
    }
}

/// The live injector driving one replay's [`FaultPlan`].
pub(crate) struct FaultInjector {
    plan: FaultPlan,
    rng: SmallRng,
    /// Memory accesses observed so far (the injector's clock).
    accesses: u64,
    /// Add-Region instructions observed so far.
    region_adds: u64,
    /// Decoy regions currently pinned in the CAM.
    decoys: Vec<RegionId>,
    /// Access count at which the current storm's decoys release.
    decoys_release_at: u64,
    /// Next decoy page index (decoys never reuse addresses within a run).
    next_decoy_page: u64,
    /// Access count until which the remote link is degraded.
    degraded_until: u64,
    /// Program address range, for forced-reconciliation targets.
    addr_lo: Addr,
    addr_hi: Addr,
    /// Statistics, merged into [`crate::SimStats`] when the run ends.
    pub(crate) stats: FaultStats,
}

impl FaultInjector {
    pub(crate) fn new(plan: FaultPlan, addr_range: (Addr, Addr)) -> FaultInjector {
        let rng = SmallRng::seed_from_u64(plan.seed);
        FaultInjector {
            plan,
            rng,
            accesses: 0,
            region_adds: 0,
            decoys: Vec::new(),
            decoys_release_at: 0,
            next_decoy_page: 0,
            degraded_until: 0,
            addr_lo: addr_range.0,
            addr_hi: addr_range.1,
            stats: FaultStats::default(),
        }
    }

    /// Install the plan's protocol mutations into a fresh system.
    pub(crate) fn install_mutations(&self, coh: &mut CoherenceSystem) {
        for &m in &self.plan.mutations {
            coh.inject_mutation(m);
        }
    }

    /// Called after every demand memory access (load/store/rmw) with the
    /// latency the coherence system charged. Returns extra stall cycles to
    /// add to the issuing core's clock; all bookkeeping is internal.
    pub(crate) fn after_access(
        &mut self,
        lat: u64,
        machine: &MachineConfig,
        coh: &mut CoherenceSystem,
    ) -> u64 {
        self.accesses += 1;
        let mut extra = 0u64;

        // Release an expired CAM storm.
        if !self.decoys.is_empty() && self.accesses >= self.decoys_release_at {
            for id in std::mem::take(&mut self.decoys) {
                extra += coh.remove_region(id);
            }
        }

        // Latency spike.
        if self.plan.spike_prob > 0.0 && self.rng.gen::<f64>() < self.plan.spike_prob {
            self.stats.latency_spikes += 1;
            extra += self.plan.spike_cycles;
        }

        // Degraded remote link: any transaction whose latency reached the
        // inter-socket figure crossed the remote link at least once.
        if lat >= machine.lat.intersocket {
            if self.accesses < self.degraded_until {
                let retries = 1 + self.rng.gen_range(0..self.plan.link_max_retries);
                let mut backoff = self.plan.link_backoff_base;
                for _ in 0..retries {
                    self.stats.link_timeouts += 1;
                    self.stats.link_retries += 1;
                    self.stats.timeout_cycles += self.plan.link_timeout;
                    self.stats.backoff_cycles += backoff;
                    extra += self.plan.link_timeout + backoff;
                    backoff = backoff.saturating_mul(2);
                }
            } else if self.plan.link_degrade_prob > 0.0
                && self.rng.gen::<f64>() < self.plan.link_degrade_prob
            {
                self.stats.link_degrade_windows += 1;
                self.degraded_until = self.accesses + self.plan.link_degrade_len;
            }
        }

        // Forced mid-region reconciliation of a random page range.
        if self.plan.forced_reconcile_period > 0
            && self
                .accesses
                .is_multiple_of(self.plan.forced_reconcile_period)
            && self.addr_hi > self.addr_lo
        {
            let pages = (self.addr_hi.0 - self.addr_lo.0).div_ceil(PAGE_SIZE);
            let first = self.rng.gen_range(0..pages);
            let start = Addr((self.addr_lo.0 / PAGE_SIZE + first) * PAGE_SIZE);
            let end = start + self.plan.forced_reconcile_pages * PAGE_SIZE;
            extra += coh.force_reconcile(start, end);
            self.stats.forced_reconciles += 1;
        }

        self.stats.stall_cycles += extra;
        extra
    }

    /// Called after every Add-Region instruction the trace executes.
    /// Periodically floods the region CAM with decoys so subsequent real
    /// adds overflow into the MESI-fallback path. Returns extra stall
    /// cycles for the issuing core.
    pub(crate) fn after_region_add(&mut self, coh: &mut CoherenceSystem) -> u64 {
        if coh.protocol() != ProtocolId::Warden || self.plan.cam_storm_period == 0 {
            return 0;
        }
        self.region_adds += 1;
        if !self.region_adds.is_multiple_of(self.plan.cam_storm_period) || !self.decoys.is_empty() {
            return 0;
        }
        self.stats.cam_storms += 1;
        let mut extra = 0u64;
        for _ in 0..MAX_DECOYS_PER_STORM {
            let base = Addr(DECOY_BASE + self.next_decoy_page * PAGE_SIZE);
            self.next_decoy_page += 1;
            match coh.add_region(base, base + PAGE_SIZE) {
                Some(id) => {
                    self.decoys.push(id);
                    self.stats.decoy_regions += 1;
                    extra += 1; // nominal CAM-insert cost per decoy
                }
                None => break, // CAM full: the storm achieved exhaustion
            }
        }
        self.decoys_release_at = self.accesses + self.plan.cam_storm_len;
        self.stats.stall_cycles += extra;
        extra
    }

    /// Release any decoys still pinned (end of run), so the final region
    /// state matches a fault-free run.
    pub(crate) fn finish(&mut self, coh: &mut CoherenceSystem) {
        for id in std::mem::take(&mut self.decoys) {
            coh.remove_region(id);
        }
    }

    /// Serialize the injector's mutable state for a checkpoint. The plan
    /// itself is not serialized — it is part of the run's identity and is
    /// re-supplied (and fingerprint-checked) on resume.
    pub(crate) fn encode_state(&self, enc: &mut Encoder) {
        enc.put_u64(self.rng.state());
        enc.put_u64(self.accesses);
        enc.put_u64(self.region_adds);
        enc.put_usize(self.decoys.len());
        for id in &self.decoys {
            enc.put_u64(id.0);
        }
        enc.put_u64(self.decoys_release_at);
        enc.put_u64(self.next_decoy_page);
        enc.put_u64(self.degraded_until);
        enc.put_u64(self.addr_lo.0);
        enc.put_u64(self.addr_hi.0);
        self.stats.encode_into(enc);
    }

    /// Restore state serialized by [`Self::encode_state`] into this
    /// injector (which must carry the same plan). The injector is only
    /// modified once the whole record has decoded.
    pub(crate) fn apply_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), CodecError> {
        let rng_state = dec.take_u64()?;
        let accesses = dec.take_u64()?;
        let region_adds = dec.take_u64()?;
        let n = dec.take_count(8)?;
        let mut decoys = Vec::with_capacity(n);
        for _ in 0..n {
            decoys.push(RegionId(dec.take_u64()?));
        }
        let decoys_release_at = dec.take_u64()?;
        let next_decoy_page = dec.take_u64()?;
        let degraded_until = dec.take_u64()?;
        let addr_lo = Addr(dec.take_u64()?);
        let addr_hi = Addr(dec.take_u64()?);
        let stats = FaultStats::decode_from(dec)?;

        self.rng = SmallRng::seed_from_u64(rng_state);
        self.accesses = accesses;
        self.region_adds = region_adds;
        self.decoys = decoys;
        self.decoys_release_at = decoys_release_at;
        self.next_decoy_page = next_decoy_page;
        self.degraded_until = degraded_until;
        self.addr_lo = addr_lo;
        self.addr_hi = addr_hi;
        self.stats = stats;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_plans_validate() {
        FaultPlan::benign(7)
            .validate()
            .expect("benign plan is valid");
        FaultPlan::mutation_only(7, ProtocolMutation::SkipWardEntrySync)
            .validate()
            .expect("mutation-only plan is valid");
    }

    #[test]
    fn out_of_range_parameters_are_rejected() {
        let cases: Vec<(&str, FaultPlan)> = vec![
            (
                "spike probability",
                FaultPlan {
                    spike_prob: 1.5,
                    ..FaultPlan::benign(0)
                },
            ),
            (
                "degrade probability",
                FaultPlan {
                    link_degrade_prob: -0.1,
                    ..FaultPlan::benign(0)
                },
            ),
            (
                "link_max_retries",
                FaultPlan {
                    link_max_retries: 0,
                    ..FaultPlan::benign(0)
                },
            ),
            (
                "cam_storm_len",
                FaultPlan {
                    cam_storm_len: 0,
                    ..FaultPlan::benign(0)
                },
            ),
            (
                "forced_reconcile_pages",
                FaultPlan {
                    forced_reconcile_pages: 0,
                    ..FaultPlan::benign(0)
                },
            ),
            (
                "link_degrade_len",
                FaultPlan {
                    link_degrade_len: 0,
                    ..FaultPlan::benign(0)
                },
            ),
        ];
        for (what, plan) in cases {
            assert!(
                matches!(plan.validate(), Err(SimError::BadFaultPlan(_))),
                "{what} should be rejected"
            );
        }
    }

    #[test]
    fn mutation_only_plans_are_not_benign() {
        assert!(FaultPlan::benign(1).is_benign());
        assert!(
            !FaultPlan::mutation_only(1, ProtocolMutation::SkipReconciliationWriteback).is_benign()
        );
        assert!(!FaultPlan::benign(1)
            .with_mutation(ProtocolMutation::CoarseSectorMerge { sector_bytes: 8 })
            .is_benign());
    }
}
