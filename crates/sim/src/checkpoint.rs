//! Crash-safe simulation checkpoints.
//!
//! A checkpoint is a single binary file holding the *complete* mutable state
//! of a paused [`SimEngine`] — scheduler, per-core clocks/deques/store
//! buffers, RNG streams, fault-injector cursors, the whole coherence system
//! (caches, directory, W state, region CAM), the memory image and every
//! statistics accumulator — so a run interrupted at any instruction boundary
//! continues **bit-identically**.
//!
//! # File format
//!
//! ```text
//! offset  size  field
//! 0       8     magic  "WARDCKPT"
//! 8       4     format version (u32 LE)
//! 12      8     payload length (u64 LE)
//! 20      n     payload
//! 20+n    8     FNV-1a-64 checksum of bytes [0, 20+n) (u64 LE)
//! ```
//!
//! The payload of an engine checkpoint starts with an identity header —
//! fingerprints of the trace program, the machine description, the protocol
//! and the simulation options — followed by the serialized engine state.
//! Resume verifies each fingerprint before touching the state, so a
//! checkpoint can never silently resume under different inputs.
//!
//! Every strict byte prefix of a valid file fails [`unframe`] (short header
//! ⇒ [`CheckpointError::Truncated`], short payload ⇒ `Truncated`, missing
//! checksum ⇒ `Truncated`), and any bit corruption fails the checksum — a
//! torn write can never load.
//!
//! # Durability
//!
//! [`write_atomic`] writes to a sibling `*.tmp` file, `fsync`s it, renames
//! it over the destination and `fsync`s the parent directory, so the
//! destination path always holds either the old or the new complete file.
//! [`CheckpointStore`] keeps two slots (`current.ckpt`, `prev.ckpt`):
//! `save` first rotates `current` to `prev` and then writes the new file
//! atomically, and `load` falls back to `prev` when `current` is missing or
//! unreadable — a crash at *any* point loses at most one snapshot interval.

use crate::config::MachineConfig;
use crate::energy::EnergyBreakdown;
use crate::engine::{SimEngine, SimOptions, SimOutcome, CANCEL_CHECK_EVENTS};
use crate::error::SimError;
use crate::obs::ObsReport;
use crate::stats::SimStats;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use warden_coherence::{InvariantViolation, ProtocolId};
use warden_mem::codec::{fnv1a64, CodecError, Decoder, Encoder};
use warden_mem::Memory;
use warden_rt::TraceProgram;

/// Magic bytes opening every checkpoint file.
pub const MAGIC: [u8; 8] = *b"WARDCKPT";
/// Current checkpoint format version.
///
/// History:
/// * **1** — initial format.
/// * **2** — `RegionStore` payload gained the `overflows` counter, and task
///   `pending_children` widened from `u32` to `u64`. Version-1 files are
///   rejected with [`CheckpointError::UnsupportedVersion`] rather than
///   misdecoded.
/// * **3** — engine state gained the optional observability recorder (and
///   the coherence payload its undrained event buffer), outcome records the
///   optional observability report, and the options fingerprint covers
///   [`SimOptions::obs`]. Older files are rejected, not misdecoded.
/// * **4** — engine state records the event-lane count the frame was
///   written under. Informational only: the merged event order is
///   canonical regardless of sharding, so a frame written at any
///   [`SimOptions::lanes`] resumes bit-identically at any other, and the
///   lane count is deliberately **not** part of the options fingerprint
///   (like the cancel token, it is an execution-strategy knob, not part of
///   the computation's identity). Older files are rejected, not
///   misdecoded.
pub const VERSION: u32 = 4;

const HEADER_LEN: usize = 8 + 4 + 8;
const FOOTER_LEN: usize = 8;

/// Everything that can go wrong writing, reading or resuming a checkpoint.
#[derive(Debug)]
#[non_exhaustive]
pub enum CheckpointError {
    /// An I/O operation on `path` failed.
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The file ends before the frame does (torn write, partial copy).
    Truncated,
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is not [`VERSION`].
    UnsupportedVersion {
        /// The version found in the file.
        found: u32,
    },
    /// The checksum does not match the file's contents (bit corruption).
    ChecksumMismatch,
    /// The frame verified but its payload does not decode.
    Corrupt(CodecError),
    /// The checkpoint belongs to a different run (program, machine,
    /// protocol or options fingerprint differs).
    Mismatch {
        /// Which identity component differed.
        what: &'static str,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, source } => {
                write!(f, "checkpoint I/O on {}: {source}", path.display())
            }
            CheckpointError::Truncated => write!(f, "checkpoint file is truncated"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CheckpointError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported checkpoint version {found} (expected {VERSION})"
                )
            }
            CheckpointError::ChecksumMismatch => write!(f, "checkpoint checksum mismatch"),
            CheckpointError::Corrupt(e) => write!(f, "corrupt checkpoint payload: {e}"),
            CheckpointError::Mismatch { what } => {
                write!(f, "checkpoint was taken from a different {what}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io { source, .. } => Some(source),
            CheckpointError::Corrupt(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for CheckpointError {
    fn from(e: CodecError) -> CheckpointError {
        CheckpointError::Corrupt(e)
    }
}

fn io_err(path: &Path, source: std::io::Error) -> CheckpointError {
    CheckpointError::Io {
        path: path.to_owned(),
        source,
    }
}

/// Wrap a payload in the checkpoint frame: magic, version, length, payload,
/// checksum.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + HEADER_LEN + FOOTER_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = fnv1a64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Verify a checkpoint frame and return its payload slice.
///
/// Every strict byte prefix of a valid frame is rejected, as is any frame
/// whose checksum does not match its contents.
pub fn unframe(bytes: &[u8]) -> Result<&[u8], CheckpointError> {
    if bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    if bytes.len() < HEADER_LEN + FOOTER_LEN {
        return Err(CheckpointError::Truncated);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(CheckpointError::UnsupportedVersion { found: version });
    }
    let plen = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let plen = usize::try_from(plen).map_err(|_| CheckpointError::Truncated)?;
    let expected = HEADER_LEN
        .checked_add(plen)
        .and_then(|n| n.checked_add(FOOTER_LEN))
        .ok_or(CheckpointError::Truncated)?;
    if bytes.len() < expected {
        return Err(CheckpointError::Truncated);
    }
    if bytes.len() > expected {
        return Err(CheckpointError::Corrupt(CodecError::Invalid {
            what: "checkpoint frame",
            detail: format!("{} trailing bytes after the frame", bytes.len() - expected),
        }));
    }
    let body = &bytes[..expected - FOOTER_LEN];
    let sum = u64::from_le_bytes(bytes[expected - FOOTER_LEN..].try_into().expect("8 bytes"));
    if fnv1a64(body) != sum {
        return Err(CheckpointError::ChecksumMismatch);
    }
    Ok(&bytes[HEADER_LEN..HEADER_LEN + plen])
}

/// Durably write `bytes` to `path`: write a sibling temporary file, `fsync`
/// it, rename it into place and `fsync` the parent directory. After a crash
/// at any point, `path` holds either its previous contents or the new bytes
/// — never a mixture.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
    let mut tmp_os = path.as_os_str().to_owned();
    tmp_os.push(".tmp");
    let tmp = PathBuf::from(tmp_os);
    {
        let mut f = fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
        f.write_all(bytes).map_err(|e| io_err(&tmp, e))?;
        f.sync_all().map_err(|e| io_err(&tmp, e))?;
    }
    fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            // Persist the rename itself (directory entry update).
            fs::File::open(dir)
                .and_then(|d| d.sync_all())
                .map_err(|e| io_err(dir, e))?;
        }
    }
    Ok(())
}

/// A two-slot checkpoint directory: `current.ckpt` is the newest snapshot,
/// `prev.ckpt` the one before it. Saving rotates current → prev before the
/// atomic write, and loading falls back to `prev` when `current` is missing
/// or fails verification, so a crash mid-save loses at most one snapshot
/// interval and a torn file is never resumed from.
#[derive(Clone, Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Open (creating if necessary) a checkpoint directory.
    pub fn new(dir: impl Into<PathBuf>) -> Result<CheckpointStore, CheckpointError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        Ok(CheckpointStore { dir })
    }

    /// Path of the newest snapshot slot.
    pub fn current_path(&self) -> PathBuf {
        self.dir.join("current.ckpt")
    }

    /// Path of the previous snapshot slot.
    pub fn prev_path(&self) -> PathBuf {
        self.dir.join("prev.ckpt")
    }

    /// Store a framed checkpoint: rotate the current slot to `prev`, then
    /// write the new file atomically.
    pub fn save(&self, framed: &[u8]) -> Result<(), CheckpointError> {
        let cur = self.current_path();
        match fs::rename(&cur, self.prev_path()) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(io_err(&cur, e)),
        }
        write_atomic(&cur, framed)
    }

    /// Load the newest verifiable checkpoint payload: `current.ckpt` if it
    /// verifies, else `prev.ckpt`. Returns `Ok(None)` when neither slot
    /// exists, and the verification error only when a slot exists but no
    /// slot is readable.
    pub fn load(&self) -> Result<Option<Vec<u8>>, CheckpointError> {
        let mut first_err = None;
        for path in [self.current_path(), self.prev_path()] {
            match fs::read(&path) {
                Ok(bytes) => match unframe(&bytes) {
                    Ok(payload) => return Ok(Some(payload.to_vec())),
                    Err(e) => first_err = first_err.or(Some(e)),
                },
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => first_err = first_err.or(Some(io_err(&path, e))),
            }
        }
        match first_err {
            None => Ok(None),
            Some(e) => Err(e),
        }
    }

    /// Delete both slots (e.g. after a run completes and its outcome has
    /// been recorded elsewhere).
    pub fn clear(&self) -> Result<(), CheckpointError> {
        for path in [self.current_path(), self.prev_path()] {
            match fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(io_err(&path, e)),
            }
        }
        Ok(())
    }
}

/// Fingerprint of the simulation options (energy parameters, checker flag
/// and fault plan) — everything besides the program, machine and protocol
/// that affects a replay. Checkpoints and the campaign runner's result
/// records both embed this value to bind saved state to its inputs.
///
/// [`SimOptions::cancel`] and [`SimOptions::lanes`] are deliberately
/// excluded: both are execution-strategy knobs that leave the replay's
/// event order, statistics and memory images bit-identical, so the same
/// simulation requested with a different token or lane count is the same
/// content-addressed computation (and a checkpoint written at one lane
/// count resumes at any other).
pub fn options_fingerprint(opts: &SimOptions) -> u64 {
    let mut enc = Encoder::new();
    let e = &opts.energy;
    for v in [
        e.e_instr,
        e.e_l1,
        e.e_l2,
        e.e_llc,
        e.e_dir,
        e.e_dram,
        e.e_ctrl_intra,
        e.e_ctrl_inter,
        e.e_data_intra,
        e.e_data_inter,
        e.e_link_retry,
        e.p_static_core,
        e.p_static_uncore,
        e.freq_ghz,
    ] {
        enc.put_f64(v);
    }
    enc.put_bool(opts.check);
    enc.put_bool(opts.obs);
    match &opts.faults {
        Some(p) => {
            enc.put_bool(true);
            enc.put_u64(p.seed);
            enc.put_u64(p.cam_storm_period);
            enc.put_u64(p.cam_storm_len);
            enc.put_u64(p.forced_reconcile_period);
            enc.put_u64(p.forced_reconcile_pages);
            enc.put_f64(p.spike_prob);
            enc.put_u64(p.spike_cycles);
            enc.put_f64(p.link_degrade_prob);
            enc.put_u64(p.link_degrade_len);
            enc.put_u64(p.link_timeout);
            enc.put_u32(p.link_max_retries);
            enc.put_u64(p.link_backoff_base);
            enc.put_usize(p.mutations.len());
            for m in &p.mutations {
                enc.put_str(&format!("{m:?}"));
            }
        }
        None => enc.put_bool(false),
    }
    fnv1a64(enc.bytes())
}

impl<'a> SimEngine<'a> {
    /// Serialize the paused engine into a complete framed checkpoint
    /// (identity header + full simulation state + checksum).
    ///
    /// Takes `&mut self` because an observability-enabled engine records a
    /// checkpoint-frame event first — part of the run's execution history,
    /// so the frame itself is included in the snapshot and survives resume.
    pub fn snapshot_to_bytes(&mut self) -> Vec<u8> {
        self.note_checkpoint_frame();
        let mut enc = Encoder::new();
        enc.put_u64(self.program_ref().fingerprint());
        enc.put_u64(self.machine_ref().fingerprint());
        enc.put_u8(self.protocol().tag());
        enc.put_u64(options_fingerprint(self.opts_ref()));
        self.encode_state(&mut enc);
        frame(enc.bytes())
    }

    /// Write a snapshot of the paused engine into `store`, rotating the
    /// previous snapshot into the fallback slot.
    pub fn try_snapshot(&mut self, store: &CheckpointStore) -> Result<(), CheckpointError> {
        store.save(&self.snapshot_to_bytes())
    }

    /// Reconstruct a paused engine from framed checkpoint bytes. The
    /// supplied `(program, machine, protocol, opts)` must fingerprint-match
    /// the ones the checkpoint was taken under.
    pub fn resume_from_bytes(
        program: &'a TraceProgram,
        machine: &'a MachineConfig,
        protocol: ProtocolId,
        opts: &SimOptions,
        bytes: &[u8],
    ) -> Result<SimEngine<'a>, CheckpointError> {
        let payload = unframe(bytes)?;
        SimEngine::resume_from_payload(program, machine, protocol, opts, payload)
    }

    fn resume_from_payload(
        program: &'a TraceProgram,
        machine: &'a MachineConfig,
        protocol: ProtocolId,
        opts: &SimOptions,
        payload: &[u8],
    ) -> Result<SimEngine<'a>, CheckpointError> {
        let mut dec = Decoder::new(payload);
        if dec.take_u64()? != program.fingerprint() {
            return Err(CheckpointError::Mismatch { what: "program" });
        }
        if dec.take_u64()? != machine.fingerprint() {
            return Err(CheckpointError::Mismatch { what: "machine" });
        }
        if dec.take_u8()? != protocol.tag() {
            return Err(CheckpointError::Mismatch { what: "protocol" });
        }
        if dec.take_u64()? != options_fingerprint(opts) {
            return Err(CheckpointError::Mismatch { what: "options" });
        }
        let mut eng = SimEngine::new(program, machine, protocol, opts);
        eng.apply_state(&mut dec)?;
        dec.finish()?;
        Ok(eng)
    }

    /// Run to completion like [`SimEngine::run_with_cancel`], additionally
    /// handing a framed snapshot to `on_frame` every `every` scheduler
    /// steps — and once more on cooperative cancellation, so an
    /// interrupted replay always leaves its latest progress behind for a
    /// later identity-bound resume (`every == 0` is clamped to 1).
    ///
    /// `on_frame` receives the step count and the complete checkpoint
    /// frame; what it does with them (a [`CheckpointStore`], a serving
    /// tier's disk slot) is the caller's business, and its failures are
    /// the caller's to swallow — this loop never stops simulating because
    /// a snapshot could not be persisted.
    ///
    /// Note for observability-enabled runs: every snapshot records a
    /// checkpoint-frame event in the run's history (see
    /// [`SimEngine::snapshot_to_bytes`]), so a framed run's outcome digest
    /// differs from an unframed one when `opts.obs` is set. Callers that
    /// serve digests (the serving layer) run with observability off, where
    /// the note is a no-op and digests are unaffected.
    pub fn run_with_cancel_frames(
        mut self,
        every: u64,
        mut on_frame: impl FnMut(u64, &[u8]),
    ) -> Result<SimOutcome, SimError> {
        let every = every.max(1);
        let token = self.opts_ref().cancel.clone();
        let mut next = self.steps().saturating_add(every);
        loop {
            if token.as_ref().is_some_and(|t| t.is_cancelled()) {
                let steps = self.steps();
                let frame = self.snapshot_to_bytes();
                on_frame(steps, &frame);
                return Err(SimError::Cancelled { steps });
            }
            let mut burst = 0u64;
            while burst < CANCEL_CHECK_EVENTS {
                if !self.step() {
                    return Ok(self.finish());
                }
                burst += 1;
                if self.steps() >= next {
                    let steps = self.steps();
                    let frame = self.snapshot_to_bytes();
                    on_frame(steps, &frame);
                    next = steps.saturating_add(every);
                }
            }
        }
    }

    /// Resume from the newest verifiable checkpoint in `store`, or return
    /// `Ok(None)` when the store holds no checkpoint (fresh start). A
    /// torn `current.ckpt` silently falls back to `prev.ckpt`.
    pub fn try_resume(
        program: &'a TraceProgram,
        machine: &'a MachineConfig,
        protocol: ProtocolId,
        opts: &SimOptions,
        store: &CheckpointStore,
    ) -> Result<Option<SimEngine<'a>>, CheckpointError> {
        match store.load()? {
            None => Ok(None),
            Some(payload) => Ok(Some(SimEngine::resume_from_payload(
                program, machine, protocol, opts, &payload,
            )?)),
        }
    }
}

/// Serialize a finished run's [`SimOutcome`] into a framed, checksummed
/// record (used by the campaign runner's durable result files).
pub fn encode_outcome(out: &SimOutcome) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_u8(out.protocol.tag());
    enc.put_str(&out.machine);
    out.stats.encode_into(&mut enc);
    enc.put_f64(out.energy.interconnect_nj);
    enc.put_f64(out.energy.in_processor_nj);
    enc.put_f64(out.energy.static_nj);
    enc.put_u64(out.memory_image_digest);
    out.final_memory.encode_into(&mut enc);
    enc.put_usize(out.region_peak);
    enc.put_usize(out.violations.len());
    for v in &out.violations {
        v.encode_into(&mut enc);
    }
    match &out.obs {
        Some(rep) => {
            enc.put_bool(true);
            rep.encode_into(&mut enc);
        }
        None => enc.put_bool(false),
    }
    frame(enc.bytes())
}

/// Decode a record produced by [`encode_outcome`].
pub fn decode_outcome(bytes: &[u8]) -> Result<SimOutcome, CheckpointError> {
    let payload = unframe(bytes)?;
    let mut dec = Decoder::new(payload);
    let protocol = ProtocolId::from_tag(dec.take_u8()?)?;
    let machine = dec.take_str()?;
    let stats = SimStats::decode_from(&mut dec)?;
    let energy = EnergyBreakdown {
        interconnect_nj: dec.take_f64()?,
        in_processor_nj: dec.take_f64()?,
        static_nj: dec.take_f64()?,
    };
    let memory_image_digest = dec.take_u64()?;
    let final_memory = Memory::decode_from(&mut dec)?;
    let region_peak = dec.take_usize()?;
    let n = dec.take_count(1)?;
    let mut violations = Vec::with_capacity(n);
    for _ in 0..n {
        violations.push(InvariantViolation::decode_from(&mut dec)?);
    }
    let obs = if dec.take_bool()? {
        Some(ObsReport::decode_from(&mut dec)?)
    } else {
        None
    };
    dec.finish()?;
    Ok(SimOutcome {
        protocol,
        machine,
        stats,
        energy,
        memory_image_digest,
        final_memory,
        region_peak,
        violations,
        obs,
        // Like `ObsReport`'s host-side span profile, the lane report is
        // transient diagnostics: it is not serialized, so a decoded
        // outcome compares equal across lane counts.
        lane_report: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate_with_options;
    use crate::faults::FaultPlan;
    use warden_rt::{trace_program, RtOptions};

    fn tiny_machine() -> MachineConfig {
        MachineConfig::dual_socket().with_cores(2)
    }

    fn sample_program() -> TraceProgram {
        trace_program("ckpt-sample", RtOptions::default(), |ctx| {
            let xs = ctx.tabulate::<u64>(256, 32, &|_c, i| i * 5 + 2);
            let _ = ctx.reduce(0, 256, 32, &|c, i| c.read(&xs, i), &|a, b| a + b, 0);
        })
    }

    /// A unique scratch directory under the system temp dir, cleaned on
    /// entry so reruns start fresh.
    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("warden-ckpt-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn frame_roundtrip_and_every_prefix_fails() {
        let payload = b"some checkpoint payload".to_vec();
        let framed = frame(&payload);
        assert_eq!(unframe(&framed).expect("frame verifies"), &payload[..]);
        for cut in 0..framed.len() {
            assert!(
                unframe(&framed[..cut]).is_err(),
                "prefix of {cut} bytes must be rejected"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let framed = frame(b"sensitive state");
        for byte in 0..framed.len() {
            for bit in 0..8 {
                let mut bad = framed.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    unframe(&bad).is_err(),
                    "flip of byte {byte} bit {bit} must be rejected"
                );
            }
        }
    }

    #[test]
    fn wrong_magic_version_and_trailing_bytes_are_typed() {
        let framed = frame(b"x");
        let mut bad = framed.clone();
        bad[0] = b'X';
        assert!(matches!(unframe(&bad), Err(CheckpointError::BadMagic)));
        let mut bad = framed.clone();
        bad[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            unframe(&bad),
            Err(CheckpointError::UnsupportedVersion { found: 99 })
        ));
        let mut bad = framed.clone();
        bad.push(0);
        assert!(matches!(unframe(&bad), Err(CheckpointError::Corrupt(_))));
        let mut bad = framed;
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        assert!(matches!(
            unframe(&bad),
            Err(CheckpointError::ChecksumMismatch)
        ));
    }

    #[test]
    fn store_rotates_and_falls_back_to_prev_on_torn_current() {
        let dir = scratch("store");
        let store = CheckpointStore::new(&dir).expect("create store");
        assert!(store.load().expect("empty store loads").is_none());

        store.save(&frame(b"first")).expect("save first");
        store.save(&frame(b"second")).expect("save second");
        assert_eq!(store.load().unwrap().unwrap(), b"second");

        // Tear the current slot at every prefix length: recovery must land
        // on the previous snapshot each time.
        let full = fs::read(store.current_path()).unwrap();
        for cut in 0..full.len() {
            fs::write(store.current_path(), &full[..cut]).unwrap();
            assert_eq!(
                store.load().unwrap().unwrap(),
                b"first",
                "torn current ({cut} bytes) must fall back to prev"
            );
        }

        // Both slots torn: a typed error, never a bogus payload.
        fs::write(store.prev_path(), b"garbage").unwrap();
        assert!(store.load().is_err());

        store.clear().expect("clear");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_resume_cycle_is_bit_identical() {
        let p = sample_program();
        let m = tiny_machine();
        let opts = SimOptions {
            faults: Some(FaultPlan::benign(11)),
            check: true,
            ..SimOptions::default()
        };
        let reference = simulate_with_options(&p, &m, ProtocolId::Warden, &opts);

        let dir = scratch("resume");
        let store = CheckpointStore::new(&dir).expect("create store");
        assert!(
            SimEngine::try_resume(&p, &m, ProtocolId::Warden, &opts, &store)
                .expect("empty resume")
                .is_none()
        );

        let mut eng = SimEngine::new(&p, &m, ProtocolId::Warden, &opts);
        for _ in 0..1_500 {
            if !eng.step() {
                break;
            }
        }
        eng.try_snapshot(&store).expect("snapshot");
        drop(eng); // the interrupted process is gone

        let resumed = SimEngine::try_resume(&p, &m, ProtocolId::Warden, &opts, &store)
            .expect("resume")
            .expect("checkpoint present");
        let out = resumed.run();
        assert_eq!(out.stats, reference.stats);
        assert_eq!(out.memory_image_digest, reference.memory_image_digest);
        assert_eq!(out.energy, reference.energy);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn framed_runs_leave_resumable_frames_and_identical_outcomes() {
        let p = sample_program();
        let m = tiny_machine();
        let opts = SimOptions::default();
        let reference = simulate_with_options(&p, &m, ProtocolId::Warden, &opts);

        // A framed run produces the same outcome as a plain one and hands
        // out monotonically advancing frames.
        let mut frames: Vec<(u64, Vec<u8>)> = Vec::new();
        let eng = SimEngine::new(&p, &m, ProtocolId::Warden, &opts);
        let out = eng
            .run_with_cancel_frames(500, |steps, frame| frames.push((steps, frame.to_vec())))
            .expect("no cancel token, must complete");
        assert_eq!(out.stats, reference.stats);
        assert_eq!(out.memory_image_digest, reference.memory_image_digest);
        assert!(!frames.is_empty(), "the run must leave frames behind");
        assert!(frames.windows(2).all(|w| w[0].0 < w[1].0));

        // Every frame resumes to the bit-identical final outcome.
        for (steps, frame) in &frames {
            let resumed = SimEngine::resume_from_bytes(&p, &m, ProtocolId::Warden, &opts, frame)
                .unwrap_or_else(|e| panic!("frame at step {steps} must resume: {e}"));
            assert_eq!(resumed.steps(), *steps);
            let out = resumed.run();
            assert_eq!(out.stats, reference.stats);
            assert_eq!(out.memory_image_digest, reference.memory_image_digest);
        }

        // A cancelled framed run still emits one final frame at the point
        // of interruption, and that frame carries the run forward.
        let token = crate::CancelToken::new();
        token.cancel();
        let cancelled_opts = SimOptions {
            cancel: Some(token),
            ..SimOptions::default()
        };
        let mut last: Option<(u64, Vec<u8>)> = None;
        let eng = SimEngine::new(&p, &m, ProtocolId::Warden, &cancelled_opts);
        let err = eng
            .run_with_cancel_frames(500, |steps, frame| last = Some((steps, frame.to_vec())))
            .expect_err("pre-cancelled run must not complete");
        assert!(matches!(err, SimError::Cancelled { .. }));
        let (steps, frame) = last.expect("cancellation leaves a final frame");
        let resumed =
            SimEngine::resume_from_bytes(&p, &m, ProtocolId::Warden, &cancelled_opts, &frame)
                .expect("final frame resumes");
        assert_eq!(resumed.steps(), steps);
        // The cancel token is excluded from the options fingerprint, so the
        // frame also resumes under plain options — the serving layer's
        // retry path.
        let retried = SimEngine::resume_from_bytes(&p, &m, ProtocolId::Warden, &opts, &frame)
            .expect("frame resumes under a fresh request's options")
            .run();
        assert_eq!(retried.stats, reference.stats);
    }

    #[test]
    fn resume_rejects_identity_mismatches() {
        let p = sample_program();
        let m = tiny_machine();
        let opts = SimOptions::default();
        let mut eng = SimEngine::new(&p, &m, ProtocolId::Warden, &opts);
        for _ in 0..200 {
            eng.step();
        }
        let bytes = eng.snapshot_to_bytes();

        let other_program = trace_program("other", RtOptions::default(), |ctx| {
            let xs = ctx.alloc::<u64>(8);
            ctx.write(&xs, 0, 1);
        });
        let err =
            SimEngine::resume_from_bytes(&other_program, &m, ProtocolId::Warden, &opts, &bytes)
                .unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch { what: "program" }));

        let other_machine = tiny_machine().with_seed(99);
        let err =
            SimEngine::resume_from_bytes(&p, &other_machine, ProtocolId::Warden, &opts, &bytes)
                .unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch { what: "machine" }));

        let err =
            SimEngine::resume_from_bytes(&p, &m, ProtocolId::Mesi, &opts, &bytes).unwrap_err();
        assert!(matches!(
            err,
            CheckpointError::Mismatch { what: "protocol" }
        ));

        let other_opts = SimOptions {
            check: true,
            ..SimOptions::default()
        };
        let err = SimEngine::resume_from_bytes(&p, &m, ProtocolId::Warden, &other_opts, &bytes)
            .unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch { what: "options" }));

        // The matching identity still resumes.
        let resumed = SimEngine::resume_from_bytes(&p, &m, ProtocolId::Warden, &opts, &bytes)
            .expect("resume");
        let a = resumed.run();
        let b = simulate_with_options(&p, &m, ProtocolId::Warden, &opts);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn obs_reports_ride_records_and_checkpoints() {
        use crate::obs::SimEvent;
        let p = sample_program();
        let m = tiny_machine();
        let opts = SimOptions {
            obs: true,
            ..SimOptions::default()
        };
        let out = simulate_with_options(&p, &m, ProtocolId::Warden, &opts);

        // The report travels inside the outcome record (host spans do not).
        let bytes = encode_outcome(&out);
        let back = decode_outcome(&bytes).expect("record decodes");
        assert_eq!(back.stats, out.stats);
        let (a, b) = (back.obs.unwrap(), out.obs.clone().unwrap());
        assert_eq!(a.timeline, b.timeline);
        assert_eq!(a.epochs, b.epochs);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.region_spans, b.region_spans);
        assert!(a.spans.is_empty(), "host spans do not ride records");

        // A snapshot taken with obs on refuses to resume without it, and
        // the matching resume keeps the pre-snapshot event history plus the
        // checkpoint-frame marker.
        let mut eng = SimEngine::new(&p, &m, ProtocolId::Warden, &opts);
        for _ in 0..500 {
            eng.step();
        }
        let snap = eng.snapshot_to_bytes();
        let plain = SimOptions::default();
        let err =
            SimEngine::resume_from_bytes(&p, &m, ProtocolId::Warden, &plain, &snap).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch { what: "options" }));

        let resumed = SimEngine::resume_from_bytes(&p, &m, ProtocolId::Warden, &opts, &snap)
            .expect("resume")
            .run();
        assert_eq!(resumed.stats, out.stats);
        let rep = resumed.obs.unwrap();
        assert!(
            rep.timeline
                .iter()
                .any(|t| t.event == SimEvent::CheckpointFrame),
            "checkpoint frame is part of the resumed run's history"
        );
        assert!(
            !out.obs
                .unwrap()
                .timeline
                .iter()
                .any(|t| t.event == SimEvent::CheckpointFrame),
            "an uninterrupted run records no frame"
        );
    }

    #[test]
    fn outcome_records_roundtrip() {
        let p = sample_program();
        let m = tiny_machine();
        let out = simulate_with_options(&p, &m, ProtocolId::Warden, &SimOptions::default());
        let bytes = encode_outcome(&out);
        let back = decode_outcome(&bytes).expect("record decodes");
        assert_eq!(back.protocol, out.protocol);
        assert_eq!(back.machine, out.machine);
        assert_eq!(back.stats, out.stats);
        assert_eq!(back.energy, out.energy);
        assert_eq!(back.memory_image_digest, out.memory_image_digest);
        assert_eq!(back.region_peak, out.region_peak);
        assert_eq!(back.violations.len(), out.violations.len());
        assert_eq!(
            back.final_memory.digest(),
            out.final_memory.digest(),
            "memory image survives the record"
        );
        for cut in 0..bytes.len() {
            assert!(decode_outcome(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn outcome_records_cover_every_registered_protocol() {
        let p = sample_program();
        let m = tiny_machine();
        let mut out = simulate_with_options(&p, &m, ProtocolId::Warden, &SimOptions::default());
        for protocol in ProtocolId::ALL {
            out.protocol = protocol;
            let back = decode_outcome(&encode_outcome(&out)).expect("record decodes");
            assert_eq!(back.protocol, protocol);
        }
    }

    #[test]
    fn outcome_record_rejects_unknown_protocol_tag() {
        let p = sample_program();
        let m = tiny_machine();
        let out = simulate_with_options(&p, &m, ProtocolId::Warden, &SimOptions::default());
        let payload = unframe(&encode_outcome(&out))
            .expect("frame verifies")
            .to_vec();
        // The protocol tag leads the payload; a stale reader meeting a
        // protocol from the future must get a typed rejection, not a
        // misattributed record.
        for bad in [ProtocolId::ALL.len() as u8, 0xFF] {
            let mut forged = payload.clone();
            forged[0] = bad;
            match decode_outcome(&frame(&forged)) {
                Err(CheckpointError::Corrupt(CodecError::BadTag { what, tag })) => {
                    assert_eq!(what, "protocol");
                    assert_eq!(tag, u64::from(bad));
                }
                other => panic!("tag {bad}: expected a typed BadTag, got {other:?}"),
            }
        }
    }
}
