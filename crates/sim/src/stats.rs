//! Statistics produced by a timing replay.

use crate::faults::FaultStats;
use warden_coherence::CoherenceStats;
use warden_mem::codec::{CodecError, Decoder, Encoder};

/// Every scalar counter of [`SimStats`] in declaration order — shared by
/// the encode and decode macros so a newly added counter fails to compile
/// unless it is wired into both (the nested coherence and fault counters
/// have their own canonical lists).
macro_rules! for_each_sim_counter {
    ($m:ident, $($args:tt)*) => {
        $m!(
            $($args)*:
            cycles,
            instructions,
            memory_accesses,
            steals,
            steal_attempts,
            idle_cycles,
            store_stall_cycles,
            tasks,
            compute_cycles,
            load_cycles,
            rmw_cycles,
            store_issue_cycles,
            region_cycles,
            steal_cycles,
            core_cycles_total,
        );
    };
}

/// Everything measured during one replay of a program on one machine under
/// one protocol.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimStats {
    /// Makespan: the cycle at which the last task event completed.
    pub cycles: u64,
    /// Instructions retired across all cores.
    pub instructions: u64,
    /// Demand memory accesses replayed.
    pub memory_accesses: u64,
    /// Successful steals.
    pub steals: u64,
    /// Steal attempts (including failed probes).
    pub steal_attempts: u64,
    /// Cycles cores spent idle (no runnable work found).
    pub idle_cycles: u64,
    /// Cycles cores stalled on a full store buffer.
    pub store_stall_cycles: u64,
    /// Tasks executed.
    pub tasks: u64,
    /// Cycles spent in pure compute (summed over cores).
    pub compute_cycles: u64,
    /// Cycles cores were blocked on loads.
    pub load_cycles: u64,
    /// Cycles cores were blocked on atomics.
    pub rmw_cycles: u64,
    /// Store issue cycles (one per store; completion hides in the buffer).
    pub store_issue_cycles: u64,
    /// Cycles charged by Add/Remove-Region instructions and reconciliation.
    pub region_cycles: u64,
    /// Cycles spent performing steals.
    pub steal_cycles: u64,
    /// The sum of all cores' final clocks. Exactly equal to the sum of the
    /// per-category cycle counters above (every clock advance is classified
    /// once) — asserted by the engine's tests.
    pub core_cycles_total: u64,
    /// All coherence-engine counters.
    pub coherence: CoherenceStats,
    /// Fault-injection counters (all zero on fault-free runs).
    pub faults: FaultStats,
}

impl SimStats {
    /// System IPC: instructions per cycle of makespan, aggregated over the
    /// whole machine (the metric behind the paper's Figure 11).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.instructions as f64 / self.cycles as f64
    }

    /// Invalidations + downgrades per 1000 instructions (Figure 9's unit).
    pub fn inv_dg_per_kilo_instr(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        self.coherence.inv_plus_dg() as f64 * 1000.0 / self.instructions as f64
    }

    /// Fraction of memory accesses that were served in the WARD state.
    pub fn ward_serve_fraction(&self) -> f64 {
        if self.memory_accesses == 0 {
            return 0.0;
        }
        self.coherence.ward_serves as f64 / self.memory_accesses as f64
    }

    /// Serialize every measurement, in declaration order, for a checkpoint
    /// or a campaign result record.
    pub fn encode_into(&self, enc: &mut Encoder) {
        macro_rules! put {
            ($self:ident, $enc:ident: $($f:ident),* $(,)?) => {
                $( $enc.put_u64($self.$f); )*
            };
        }
        for_each_sim_counter!(put, self, enc);
        self.coherence.encode_into(enc);
        self.faults.encode_into(enc);
    }

    /// Decode measurements serialized by [`Self::encode_into`].
    pub fn decode_from(dec: &mut Decoder<'_>) -> Result<SimStats, CodecError> {
        let mut s = SimStats::default();
        macro_rules! take {
            ($s:ident, $dec:ident: $($f:ident),* $(,)?) => {
                $( $s.$f = $dec.take_u64()?; )*
            };
        }
        for_each_sim_counter!(take, s, dec);
        s.coherence = CoherenceStats::decode_from(dec)?;
        s.faults = FaultStats::decode_from(dec)?;
        Ok(s)
    }

    /// Every measurement as `(name, value)` pairs in declaration order,
    /// with nested coherence and fault counters flattened under
    /// `coherence.` / `faults.` prefixes — the surface the golden-stats
    /// snapshot tests freeze.
    pub fn fields(&self) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        macro_rules! list {
            ($self:ident: $($f:ident),* $(,)?) => {
                $( out.push((stringify!($f).to_string(), $self.$f)); )*
            };
        }
        for_each_sim_counter!(list, self);
        for (n, v) in self.coherence.fields() {
            out.push((format!("coherence.{n}"), v));
        }
        for (n, v) in self.faults.fields() {
            out.push((format!("faults.{n}"), v));
        }
        out
    }

    /// The classified per-category cycle totals, in display order:
    /// (label, cycles) over all cores.
    pub fn cycle_breakdown(&self) -> [(&'static str, u64); 8] {
        [
            ("compute", self.compute_cycles),
            ("loads", self.load_cycles),
            ("atomics", self.rmw_cycles),
            (
                "store issue+stall",
                self.store_issue_cycles + self.store_stall_cycles,
            ),
            ("region ops", self.region_cycles),
            ("steals", self.steal_cycles),
            ("idle", self.idle_cycles),
            ("fault stalls", self.faults.stall_cycles),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_is_instructions_per_cycle() {
        let s = SimStats {
            cycles: 100,
            instructions: 250,
            ..SimStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn inv_dg_per_kilo() {
        let mut s = SimStats {
            instructions: 10_000,
            ..SimStats::default()
        };
        s.coherence.invalidations = 30;
        s.coherence.downgrades = 20;
        assert!((s.inv_dg_per_kilo_instr() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn codec_roundtrip_covers_every_field() {
        // Distinct values per scalar field so a swapped or skipped field in
        // the codec cannot cancel out.
        let mut s = SimStats::default();
        let mut i = 1u64;
        macro_rules! fill {
            ($s:ident, $i:ident: $($f:ident),* $(,)?) => {
                $( $s.$f = $i; $i += 1; )*
            };
        }
        for_each_sim_counter!(fill, s, i);
        assert!(i > 15, "expected at least 15 scalar counters");
        s.coherence.downgrades = 99;
        s.faults.latency_spikes = 77;
        let mut enc = Encoder::new();
        s.encode_into(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = SimStats::decode_from(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn zero_division_guards() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.inv_dg_per_kilo_instr(), 0.0);
        assert_eq!(s.ward_serve_fraction(), 0.0);
    }
}
