//! Sharded event lanes: per-socket partitions of the core set that each
//! advance their own cores' event frontier, merged through an explicit
//! deterministic comparator.
//!
//! The sequential engine picks, at every scheduler step, the core with the
//! smallest `(clock, id)` by scanning all cores. A [`LaneSet`] shards that
//! selection: cores are partitioned into contiguous, socket-aligned lanes,
//! each lane caches the [`MergeKey`] of its own minimum core, and the merge
//! picks the smallest lane frontier. Because one scheduler step advances
//! exactly one core's clock, only that core's lane frontier goes stale —
//! the next pick refreshes just that lane (`O(cores_per_lane + lanes)`
//! instead of `O(ncores)`) and the merged order is *bit-identical to the
//! sequential scan by construction*: both compute the argmin of the same
//! key over the same set, the lanes merely shard the scan.
//!
//! Lane-local work versus merge-mediated work is accounted per lane (see
//! [`LaneReport`]): private-hierarchy hits touch only the issuing core's
//! L1/L2, while directory transactions are cross-shard coherence messages
//! that the merge serializes in canonical [`MergeKey`] order. The
//! accounting is observational — it never alters the schedule — so every
//! lane count replays the same canonical event order, which is what the
//! lane-determinism CI gate and the lane-count property tests assert.

use warden_coherence::Topology;

/// The canonical merge order of the sharded engine: cross-shard work is
/// serialized by `(clock, core, seq)`, compared lexicographically in that
/// field order (the derived `Ord` on the struct's declaration order).
///
/// * `clock` — the issuing core's local clock at the instruction boundary.
/// * `core` — the core id; breaks clock ties deterministically (lowest id
///   first, exactly the sequential engine's tie rule).
/// * `seq` — the issuing core's scheduler-step counter. Two keys from the
///   same core always differ in `seq`, so back-to-back zero-cost steps of
///   one core (which share `clock` *and* `core`) still carry their program
///   order into the merge explicitly rather than by convention.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct MergeKey {
    /// Local clock of the issuing core, in cycles.
    pub clock: u64,
    /// Issuing core id.
    pub core: u32,
    /// Scheduler steps the issuing core has already executed.
    pub seq: u64,
}

/// One lane: a contiguous span of cores and the cached merge key of its
/// minimum core.
#[derive(Clone, Debug)]
struct Lane {
    /// Core ids `start..end` owned by this lane (never empty).
    start: u32,
    end: u32,
    /// Cached `min` of [`MergeKey`] over the lane's cores. Exact whenever
    /// the lane is not the stale one: clocks only change for the executed
    /// core, and `seq` only changes for executed cores too.
    frontier: MergeKey,
    /// Scheduler steps executed by this lane's cores.
    events: u64,
    /// Of those, steps whose memory access was served lane-locally by the
    /// issuing core's private hierarchy (no directory transaction).
    local_events: u64,
}

/// Per-lane accounting of a laned run, surfaced on
/// [`SimOutcome::lane_report`](crate::SimOutcome::lane_report).
///
/// The report is diagnostic output only: it is **not** part of the
/// simulation statistics, is never checkpointed, and never feeds back into
/// the schedule — statistics, memory images and observability reports stay
/// bit-identical across lane counts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LaneReport {
    /// One entry per lane, in lane order.
    pub lanes: Vec<LaneStats>,
    /// Total merge decisions (equals the run's scheduler steps).
    pub merges: u64,
    /// Merges that picked a different lane than the previous merge — the
    /// number of times the merged order crossed a shard boundary.
    pub lane_switches: u64,
}

/// Accounting for a single lane of a [`LaneReport`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LaneStats {
    /// First core id owned by the lane.
    pub first_core: u32,
    /// Number of cores owned by the lane.
    pub num_cores: u32,
    /// Scheduler steps executed by the lane's cores.
    pub events: u64,
    /// Steps whose memory access was served lane-locally by the issuing
    /// core's private hierarchy (subset of `events`).
    pub local_events: u64,
}

/// The sharded selection state of a laned engine: the core partition, the
/// cached per-lane frontiers and the merge accounting.
#[derive(Clone, Debug)]
pub struct LaneSet {
    lanes: Vec<Lane>,
    /// Per-core scheduler-step counters (the `seq` of [`MergeKey`]).
    seq: Vec<u64>,
    /// Lane whose frontier is stale because its core executed last pick.
    stale: Option<u32>,
    /// Lane picked by the previous merge.
    last_lane: Option<u32>,
    merges: u64,
    lane_switches: u64,
}

impl LaneSet {
    /// Partition `ncores` cores of `topo` into `requested` contiguous
    /// lanes (clamped to `1..=ncores`).
    ///
    /// Lane boundaries come from the balanced split `i * ncores / lanes`,
    /// which coincides with socket boundaries whenever the lane count
    /// divides the socket count or vice versa — in particular
    /// `requested == topo.num_sockets()` yields exactly one lane per
    /// socket, the natural sharding of a multi-socket directory.
    ///
    /// Frontiers start at clock 0; call [`Self::rebuild`] after restoring
    /// core clocks from a checkpoint.
    pub fn new(topo: Topology, requested: usize) -> LaneSet {
        let ncores = topo.num_cores();
        let nlanes = requested.clamp(1, ncores);
        let lanes = (0..nlanes)
            .map(|i| {
                let start = (i * ncores / nlanes) as u32;
                let end = ((i + 1) * ncores / nlanes) as u32;
                Lane {
                    start,
                    end,
                    frontier: MergeKey {
                        clock: 0,
                        core: start,
                        seq: 0,
                    },
                    events: 0,
                    local_events: 0,
                }
            })
            .collect();
        LaneSet {
            lanes,
            seq: vec![0; ncores],
            stale: None,
            last_lane: None,
            merges: 0,
            lane_switches: 0,
        }
    }

    /// Number of lanes.
    pub fn num_lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Recompute every lane frontier from scratch. Needed exactly when
    /// core clocks changed behind the set's back — i.e. after a checkpoint
    /// restore. `clock_of(core)` must return the core's current clock.
    pub fn rebuild(&mut self, clock_of: impl Fn(usize) -> u64) {
        for l in 0..self.lanes.len() {
            self.refresh(l, &clock_of);
        }
        self.stale = None;
    }

    /// The merge: pick the core the engine must step next.
    ///
    /// Refreshes the one stale lane (the lane of the previously picked
    /// core — the only lane whose frontier can have moved) and returns the
    /// core of the smallest lane frontier. This is the argmin of
    /// [`MergeKey`] over all cores, computed shard-by-shard; the engine
    /// asserts it equals the sequential scan in debug builds.
    pub fn pick(&mut self, clock_of: impl Fn(usize) -> u64) -> usize {
        if let Some(l) = self.stale.take() {
            self.refresh(l as usize, &clock_of);
        }
        let (best, _) = self
            .lanes
            .iter()
            .enumerate()
            .min_by_key(|(_, lane)| lane.frontier)
            .expect("lane set is never empty");
        let core = self.lanes[best].frontier.core as usize;
        self.lanes[best].events += 1;
        self.merges += 1;
        if let Some(prev) = self.last_lane {
            if prev != best as u32 {
                self.lane_switches += 1;
            }
        }
        self.last_lane = Some(best as u32);
        self.stale = Some(best as u32);
        self.seq[core] += 1;
        core
    }

    /// Record that the step just executed for `core` was served
    /// lane-locally by the private hierarchy (purely diagnostic).
    pub fn note_local(&mut self, core: usize) {
        let l = self.lane_of(core);
        self.lanes[l].local_events += 1;
    }

    /// Produce the per-lane accounting of the run so far.
    pub fn report(&self) -> LaneReport {
        LaneReport {
            lanes: self
                .lanes
                .iter()
                .map(|l| LaneStats {
                    first_core: l.start,
                    num_cores: l.end - l.start,
                    events: l.events,
                    local_events: l.local_events,
                })
                .collect(),
            merges: self.merges,
            lane_switches: self.lane_switches,
        }
    }

    fn lane_of(&self, core: usize) -> usize {
        self.lanes
            .partition_point(|l| (l.end as usize) <= core)
            .min(self.lanes.len() - 1)
    }

    fn refresh(&mut self, l: usize, clock_of: &impl Fn(usize) -> u64) {
        let lane = &mut self.lanes[l];
        let mut best = MergeKey {
            clock: clock_of(lane.start as usize),
            core: lane.start,
            seq: self.seq[lane.start as usize],
        };
        for c in lane.start + 1..lane.end {
            let key = MergeKey {
                clock: clock_of(c as usize),
                core: c,
                seq: self.seq[c as usize],
            };
            if key < best {
                best = key;
            }
        }
        lane.frontier = best;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spans(set: &LaneSet) -> Vec<(u32, u32)> {
        set.lanes.iter().map(|l| (l.start, l.end)).collect()
    }

    #[test]
    fn partition_is_contiguous_and_balanced() {
        let topo = Topology::new(2, 4);
        assert_eq!(spans(&LaneSet::new(topo, 1)), vec![(0, 8)]);
        assert_eq!(spans(&LaneSet::new(topo, 2)), vec![(0, 4), (4, 8)]);
        assert_eq!(
            spans(&LaneSet::new(topo, 4)),
            vec![(0, 2), (2, 4), (4, 6), (6, 8)]
        );
        // Uneven split stays contiguous and covers every core once.
        let set = LaneSet::new(Topology::new(1, 7), 3);
        assert_eq!(spans(&set), vec![(0, 2), (2, 4), (4, 7)]);
    }

    #[test]
    fn lane_count_per_socket_aligns_with_socket_boundaries() {
        let topo = Topology::new(4, 3);
        let set = LaneSet::new(topo, 4);
        for (i, &(start, end)) in spans(&set).iter().enumerate() {
            assert_eq!(topo.socket_of(start as usize), i);
            assert_eq!(topo.socket_of((end - 1) as usize), i);
        }
    }

    #[test]
    fn requested_lanes_clamp_to_core_count() {
        let topo = Topology::new(1, 4);
        assert_eq!(LaneSet::new(topo, 0).num_lanes(), 1);
        assert_eq!(LaneSet::new(topo, 99).num_lanes(), 4);
    }

    #[test]
    fn merge_key_orders_by_clock_then_core_then_seq() {
        let k = |clock, core, seq| MergeKey { clock, core, seq };
        assert!(k(1, 9, 9) < k(2, 0, 0));
        assert!(k(5, 1, 9) < k(5, 2, 0));
        assert!(k(5, 3, 1) < k(5, 3, 2));
    }

    /// The sharded pick must match the sequential argmin on an arbitrary
    /// clock evolution where only the picked core's clock advances.
    #[test]
    fn pick_matches_sequential_argmin() {
        let topo = Topology::new(2, 4);
        let ncores = topo.num_cores();
        for nlanes in [1usize, 2, 3, 4, 8] {
            let mut set = LaneSet::new(topo, nlanes);
            let mut clocks = vec![0u64; ncores];
            // Deterministic pseudo-random increments (LCG), including
            // zero-cost steps so `seq` ties get exercised.
            let mut x = 0x9e3779b97f4a7c15u64;
            for _ in 0..10_000 {
                let expect = (0..ncores).min_by_key(|&i| (clocks[i], i)).expect("cores");
                let got = set.pick(|i| clocks[i]);
                assert_eq!(got, expect, "lanes={nlanes}");
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                clocks[got] += (x >> 59) % 7; // 0..=6, often 0
            }
        }
    }

    #[test]
    fn rebuild_restores_frontiers_after_external_clock_change() {
        let topo = Topology::new(2, 2);
        let mut set = LaneSet::new(topo, 2);
        let clocks = [40u64, 10, 30, 20];
        set.rebuild(|i| clocks[i]);
        assert_eq!(set.pick(|i| clocks[i]), 1);
    }

    #[test]
    fn report_accounts_events_per_lane() {
        let topo = Topology::new(2, 2);
        let mut set = LaneSet::new(topo, 2);
        let mut clocks = [0u64; 4];
        for _ in 0..8 {
            let c = set.pick(|i| clocks[i]);
            set.note_local(c);
            clocks[c] += 1;
        }
        let report = set.report();
        assert_eq!(report.merges, 8);
        assert_eq!(report.lanes.len(), 2);
        assert_eq!(report.lanes.iter().map(|l| l.events).sum::<u64>(), 8);
        assert_eq!(report.lanes.iter().map(|l| l.local_events).sum::<u64>(), 8);
        // Round-robin over equal clocks crosses the shard boundary often.
        assert!(report.lane_switches > 0);
    }
}
