//! Cooperative cancellation for long-running replays.
//!
//! A [`CancelToken`] is one shared atomic flag: the party that wants a
//! replay stopped calls [`CancelToken::cancel`], and an engine given the
//! token through [`crate::SimOptions::cancel`] observes the flag at a
//! bounded event interval ([`crate::engine::CANCEL_CHECK_EVENTS`]) and
//! returns a typed [`crate::SimError::Cancelled`] instead of an outcome.
//!
//! The token deliberately carries **no identity**: it is not part of the
//! options fingerprint (two requests for the same simulation with
//! different tokens are the *same* content-addressed computation), it is
//! never serialized into checkpoints, and cloning it clones the handle,
//! not the flag — every clone observes and triggers the same cancellation.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shareable cancellation flag (see the module docs).
#[derive(Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; every clone of this token
    /// observes it.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

impl fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CancelToken")
            .field(&self.is_cancelled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
        // Idempotent.
        a.cancel();
        assert!(a.is_cancelled());
    }
}
