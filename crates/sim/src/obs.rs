//! Cycle-stamped observability for the replay engine.
//!
//! The coherence layer emits typed, timestamp-free [`ProtocolEvent`]s
//! (it has no clock); this module is where they become *observability*:
//! the engine drains the event buffer after every access and hands the
//! batch to an [`ObsRecorder`], which
//!
//! * stamps each event with the issuing core's cycle counter into a bounded
//!   timeline ([`TimedEvent`], capped at [`MAX_TIMELINE_EVENTS`]),
//! * accumulates per-epoch summaries ([`EpochSummary`], epoch = `cycle >>
//!   epoch_shift`),
//! * feeds log2-bucket histograms (miss latency, reconciliation walk size,
//!   WARD-region lifetime), and
//! * tracks live regions so each add/remove pair becomes a [`RegionSpan`]
//!   renderable as a Perfetto duration slice.
//!
//! The finished run carries all of it out as an [`ObsReport`]
//! ([`crate::SimOutcome::obs`]), which exports a Chrome trace-event JSON
//! timeline ([`ObsReport::trace_event_json`]) that Perfetto and
//! `chrome://tracing` load directly, plus plain-text epoch and summary
//! renderings for the harness's `--obs` flag.
//!
//! Recording is opt-in ([`crate::SimOptions::obs`]) and purely passive: it
//! never touches clocks, the RNG or any statistic, so an instrumented run
//! produces bit-identical [`crate::SimStats`] and memory images. The
//! recorder state is part of the engine checkpoint (a resumed run keeps its
//! history); only the wall-clock [`SpanSet`] profile is host-side and
//! deliberately excluded from serialization and determinism guarantees.

use std::fmt::Write as _;
use warden_coherence::{CoherenceSystem, ProtocolEvent};
use warden_mem::codec::{CodecError, Decoder, Encoder};
use warden_obs::{ArgVal, Hist, MetricsRegistry, SpanSet, TraceBuilder};

/// Default epoch width exponent: epochs are `1 << 14 = 16384` cycles.
pub const DEFAULT_EPOCH_SHIFT: u32 = 14;

/// Hard cap on timeline length; events past it are counted in
/// [`ObsReport::dropped_events`] instead of stored (epoch summaries and
/// histograms keep accumulating — only the per-event timeline is bounded).
pub const MAX_TIMELINE_EVENTS: usize = 1_000_000;

/// Epoch summaries stop growing past this many epochs; later cycles fold
/// into the last epoch so a pathological makespan cannot balloon memory.
const MAX_EPOCHS: usize = 1 << 20;

/// One observable simulation-level action: a protocol event, or something
/// only the engine can see (injected fault stalls, checkpoint frames).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimEvent {
    /// A coherence-protocol event drained from the directory.
    Protocol(ProtocolEvent),
    /// A fault-injection stall charged to a core after an access.
    FaultStall {
        /// The stalled core.
        core: usize,
        /// Extra cycles the injector charged.
        cycles: u64,
    },
    /// A checkpoint frame was serialized at this point of the run. Frames
    /// are execution history: a resumed run keeps the event, an
    /// uninterrupted run never has one.
    CheckpointFrame,
}

impl SimEvent {
    /// Short stable name (Perfetto event name, summary key).
    pub fn name(&self) -> &'static str {
        match self {
            SimEvent::Protocol(p) => p.name(),
            SimEvent::FaultStall { .. } => "FaultStall",
            SimEvent::CheckpointFrame => "CheckpointFrame",
        }
    }

    /// Serialize one event (tag byte + payload).
    pub fn encode_into(&self, enc: &mut Encoder) {
        match *self {
            SimEvent::Protocol(p) => {
                enc.put_u8(0);
                p.encode_into(enc);
            }
            SimEvent::FaultStall { core, cycles } => {
                enc.put_u8(1);
                enc.put_usize(core);
                enc.put_u64(cycles);
            }
            SimEvent::CheckpointFrame => enc.put_u8(2),
        }
    }

    /// Decode an event serialized by [`Self::encode_into`].
    pub fn decode_from(dec: &mut Decoder<'_>) -> Result<SimEvent, CodecError> {
        Ok(match dec.take_u8()? {
            0 => SimEvent::Protocol(ProtocolEvent::decode_from(dec)?),
            1 => SimEvent::FaultStall {
                core: dec.take_usize()?,
                cycles: dec.take_u64()?,
            },
            2 => SimEvent::CheckpointFrame,
            t => {
                return Err(CodecError::BadTag {
                    what: "sim event",
                    tag: t as u64,
                })
            }
        })
    }
}

/// A [`SimEvent`] stamped with the issuing core's cycle counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimedEvent {
    /// The issuing core's clock *after* the access that produced the event.
    pub cycle: u64,
    /// The core whose access drained the event (directory-side events are
    /// attributed to the core that triggered them).
    pub core: usize,
    /// What happened.
    pub event: SimEvent,
}

impl TimedEvent {
    /// Serialize one stamped event.
    pub fn encode_into(&self, enc: &mut Encoder) {
        enc.put_u64(self.cycle);
        enc.put_usize(self.core);
        self.event.encode_into(enc);
    }

    /// Decode an event serialized by [`Self::encode_into`].
    pub fn decode_from(dec: &mut Decoder<'_>) -> Result<TimedEvent, CodecError> {
        Ok(TimedEvent {
            cycle: dec.take_u64()?,
            core: dec.take_usize()?,
            event: SimEvent::decode_from(dec)?,
        })
    }
}

/// One completed WARD region: its directory id, the cycle it was added,
/// the cycle its reconciliation walk completed, and how many dirty blocks
/// that walk visited. Exported as a Perfetto duration slice.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegionSpan {
    /// Directory-assigned region id.
    pub id: u64,
    /// Cycle the Add-Region was accepted.
    pub birth: u64,
    /// Cycle the Remove-Region (reconciliation walk) completed.
    pub death: u64,
    /// Dirty blocks the reconciliation walk visited.
    pub blocks: u64,
}

impl RegionSpan {
    fn encode_into(&self, enc: &mut Encoder) {
        enc.put_u64(self.id);
        enc.put_u64(self.birth);
        enc.put_u64(self.death);
        enc.put_u64(self.blocks);
    }

    fn decode_from(dec: &mut Decoder<'_>) -> Result<RegionSpan, CodecError> {
        let s = RegionSpan {
            id: dec.take_u64()?,
            birth: dec.take_u64()?,
            death: dec.take_u64()?,
            blocks: dec.take_u64()?,
        };
        if s.death < s.birth {
            return Err(CodecError::Invalid {
                what: "region span",
                detail: format!(
                    "region {} dies at {} before birth {}",
                    s.id, s.death, s.birth
                ),
            });
        }
        Ok(s)
    }
}

/// Every counter of [`EpochSummary`] in declaration order — shared by the
/// encode and decode macros so a newly added counter fails to compile
/// unless it is wired into both.
macro_rules! for_each_epoch_counter {
    ($m:ident, $($args:tt)*) => {
        $m!(
            $($args)*:
            events,
            misses,
            miss_cycles,
            reconciles,
            region_adds,
            region_removes,
            ward_entry_syncs,
            rmw_escapes,
            evictions,
            fault_stall_cycles,
            checkpoint_frames,
        );
    };
}

/// Activity within one epoch (`1 << epoch_shift` cycles) of simulated time.
/// The epoch index is the summary's position in [`ObsReport::epochs`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EpochSummary {
    /// ProtocolId events observed.
    pub events: u64,
    /// Demand accesses slower than an L2 hit (they reached the directory).
    pub misses: u64,
    /// Summed latency of those misses, in cycles.
    pub miss_cycles: u64,
    /// Blocks reconciled (write-mask merges at the LLC).
    pub reconciles: u64,
    /// Add-Region instructions accepted.
    pub region_adds: u64,
    /// Remove-Region walks completed.
    pub region_removes: u64,
    /// Dirty-owner snapshots taken on W entry.
    pub ward_entry_syncs: u64,
    /// Atomics that escaped the W state coherently.
    pub rmw_escapes: u64,
    /// Private and LLC evictions.
    pub evictions: u64,
    /// Cycles the fault injector stalled cores.
    pub fault_stall_cycles: u64,
    /// Checkpoint frames serialized.
    pub checkpoint_frames: u64,
}

impl EpochSummary {
    fn encode_into(&self, enc: &mut Encoder) {
        macro_rules! put {
            ($self:ident, $enc:ident: $($f:ident),* $(,)?) => {
                $( $enc.put_u64($self.$f); )*
            };
        }
        for_each_epoch_counter!(put, self, enc);
    }

    fn decode_from(dec: &mut Decoder<'_>) -> Result<EpochSummary, CodecError> {
        let mut s = EpochSummary::default();
        macro_rules! take {
            ($s:ident, $dec:ident: $($f:ident),* $(,)?) => {
                $( $s.$f = $dec.take_u64()?; )*
            };
        }
        for_each_epoch_counter!(take, s, dec);
        Ok(s)
    }

    /// Whether nothing at all happened in this epoch.
    pub fn is_empty(&self) -> bool {
        *self == EpochSummary::default()
    }
}

/// The engine-side recorder: owns every accumulator while the run is live.
/// Everything except the wall-clock span profile and the drain scratch
/// buffer is checkpointed, so a resumed run keeps its history.
#[derive(Clone, Debug)]
pub(crate) struct ObsRecorder {
    epoch_shift: u32,
    timeline: Vec<TimedEvent>,
    dropped: u64,
    epochs: Vec<EpochSummary>,
    /// Per-event-kind counts, keyed by [`SimEvent::name`].
    counts: MetricsRegistry,
    miss_latency: Hist,
    recon_blocks: Hist,
    region_lifetime: Hist,
    /// Live regions: `(directory id, birth cycle)`, sorted by id.
    region_births: Vec<(u64, u64)>,
    region_spans: Vec<RegionSpan>,
    /// Host-side profile; transient (reset on restore, never serialized).
    spans: SpanSet,
    /// Drain scratch; transient.
    scratch: Vec<ProtocolEvent>,
}

impl ObsRecorder {
    pub(crate) fn new() -> ObsRecorder {
        ObsRecorder {
            epoch_shift: DEFAULT_EPOCH_SHIFT,
            timeline: Vec::new(),
            dropped: 0,
            epochs: Vec::new(),
            counts: MetricsRegistry::new(),
            miss_latency: Hist::new(),
            recon_blocks: Hist::new(),
            region_lifetime: Hist::new(),
            region_births: Vec::new(),
            region_spans: Vec::new(),
            spans: SpanSet::new(),
            scratch: Vec::new(),
        }
    }

    fn epoch_mut(&mut self, cycle: u64) -> &mut EpochSummary {
        let idx = ((cycle >> self.epoch_shift) as usize).min(MAX_EPOCHS - 1);
        if idx >= self.epochs.len() {
            self.epochs.resize(idx + 1, EpochSummary::default());
        }
        &mut self.epochs[idx]
    }

    fn push(&mut self, ev: TimedEvent) {
        if self.timeline.len() < MAX_TIMELINE_EVENTS {
            self.timeline.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    /// Record a demand access that completed with latency `lat`; anything
    /// slower than an L2 hit reached the directory and counts as a miss.
    pub(crate) fn note_access(&mut self, cycle: u64, lat: u64, l2_lat: u64) {
        if lat > l2_lat {
            self.miss_latency.add(lat);
            let e = self.epoch_mut(cycle);
            e.misses += 1;
            e.miss_cycles += lat;
        }
    }

    /// Record `cycles` of injector-charged stall on `core`.
    pub(crate) fn note_fault_stall(&mut self, cycle: u64, core: usize, cycles: u64) {
        self.epoch_mut(cycle).fault_stall_cycles += cycles;
        self.counts.add_counter("FaultStall", 1);
        self.push(TimedEvent {
            cycle,
            core,
            event: SimEvent::FaultStall { core, cycles },
        });
    }

    /// Record that a checkpoint frame was serialized at `cycle`.
    pub(crate) fn note_checkpoint_frame(&mut self, cycle: u64) {
        self.epoch_mut(cycle).checkpoint_frames += 1;
        self.counts.add_counter("CheckpointFrame", 1);
        self.push(TimedEvent {
            cycle,
            core: 0,
            event: SimEvent::CheckpointFrame,
        });
    }

    /// Drain the coherence system's event buffer, stamping every event
    /// with `cycle` and attributing it to `core`.
    pub(crate) fn drain(&mut self, coh: &mut CoherenceSystem, cycle: u64, core: usize) {
        let mut buf = std::mem::take(&mut self.scratch);
        coh.drain_events(&mut buf);
        for ev in buf.drain(..) {
            // Classification is the protocol's own judgement — the same
            // wire event can be demand traffic under MESI and sync traffic
            // under self-invalidation.
            let class = coh.classify_event(&ev);
            self.counts.add_counter(class.name(), 1);
            self.record_protocol(cycle, core, ev);
        }
        self.scratch = buf;
    }

    fn record_protocol(&mut self, cycle: u64, core: usize, ev: ProtocolEvent) {
        self.counts.add_counter(ev.name(), 1);
        {
            let e = self.epoch_mut(cycle);
            e.events += 1;
            match ev {
                ProtocolEvent::Reconcile { .. } => e.reconciles += 1,
                ProtocolEvent::RegionAdd { .. } => e.region_adds += 1,
                ProtocolEvent::RegionRemove { .. } => e.region_removes += 1,
                ProtocolEvent::WardEntrySync { .. } => e.ward_entry_syncs += 1,
                ProtocolEvent::RmwEscape { .. } => e.rmw_escapes += 1,
                ProtocolEvent::PrivEviction { .. } | ProtocolEvent::LlcEviction { .. } => {
                    e.evictions += 1
                }
                _ => {}
            }
        }
        match ev {
            ProtocolEvent::RegionAdd { id, .. } => {
                match self.region_births.binary_search_by_key(&id, |&(i, _)| i) {
                    Ok(pos) => self.region_births[pos].1 = cycle,
                    Err(pos) => self.region_births.insert(pos, (id, cycle)),
                }
            }
            ProtocolEvent::RegionRemove { id, blocks } => {
                self.recon_blocks.add(blocks);
                if let Ok(pos) = self.region_births.binary_search_by_key(&id, |&(i, _)| i) {
                    let (_, birth) = self.region_births.remove(pos);
                    self.region_lifetime.add(cycle.saturating_sub(birth));
                    if self.region_spans.len() < MAX_TIMELINE_EVENTS {
                        self.region_spans.push(RegionSpan {
                            id,
                            birth,
                            death: cycle.max(birth),
                            blocks,
                        });
                    }
                }
            }
            _ => {}
        }
        self.push(TimedEvent {
            cycle,
            core,
            event: SimEvent::Protocol(ev),
        });
    }

    /// Fold the accumulators into the run's [`ObsReport`].
    pub(crate) fn into_report(self) -> ObsReport {
        let mut metrics = self.counts;
        metrics.set_counter("timeline.events", self.timeline.len() as u64);
        metrics.set_counter("timeline.dropped", self.dropped);
        metrics.set_hist("miss_latency_cycles", self.miss_latency);
        metrics.set_hist("recon_walk_blocks", self.recon_blocks);
        metrics.set_hist("region_lifetime_cycles", self.region_lifetime);
        ObsReport {
            epoch_shift: self.epoch_shift,
            metrics,
            epochs: self.epochs,
            timeline: self.timeline,
            region_spans: self.region_spans,
            dropped_events: self.dropped,
            spans: self.spans,
        }
    }

    /// Serialize the recorder (everything except the host-side span profile
    /// and the drain scratch buffer) for an engine checkpoint.
    pub(crate) fn encode_state(&self, enc: &mut Encoder) {
        enc.put_u32(self.epoch_shift);
        enc.put_u64(self.dropped);
        enc.put_usize(self.timeline.len());
        for ev in &self.timeline {
            ev.encode_into(enc);
        }
        enc.put_usize(self.epochs.len());
        for e in &self.epochs {
            e.encode_into(enc);
        }
        self.counts.encode_into(enc);
        self.miss_latency.encode_into(enc);
        self.recon_blocks.encode_into(enc);
        self.region_lifetime.encode_into(enc);
        enc.put_usize(self.region_births.len());
        for &(id, birth) in &self.region_births {
            enc.put_u64(id);
            enc.put_u64(birth);
        }
        enc.put_usize(self.region_spans.len());
        for s in &self.region_spans {
            s.encode_into(enc);
        }
    }

    /// Decode recorder state serialized by [`Self::encode_state`]. The span
    /// profile restarts empty: it measures the host, not the run.
    pub(crate) fn decode_state(dec: &mut Decoder<'_>) -> Result<ObsRecorder, CodecError> {
        let epoch_shift = dec.take_u32()?;
        if epoch_shift >= 64 {
            return Err(CodecError::Invalid {
                what: "obs recorder",
                detail: format!("epoch shift {epoch_shift} out of range"),
            });
        }
        let dropped = dec.take_u64()?;
        let n = dec.take_count(17)?;
        let mut timeline = Vec::with_capacity(n);
        for _ in 0..n {
            timeline.push(TimedEvent::decode_from(dec)?);
        }
        let n = dec.take_count(88)?;
        let mut epochs = Vec::with_capacity(n);
        for _ in 0..n {
            epochs.push(EpochSummary::decode_from(dec)?);
        }
        let counts = MetricsRegistry::decode_from(dec)?;
        let miss_latency = Hist::decode_from(dec)?;
        let recon_blocks = Hist::decode_from(dec)?;
        let region_lifetime = Hist::decode_from(dec)?;
        let n = dec.take_count(16)?;
        let mut region_births = Vec::with_capacity(n);
        let mut prev: Option<u64> = None;
        for _ in 0..n {
            let id = dec.take_u64()?;
            if prev.is_some_and(|p| id <= p) {
                return Err(CodecError::Invalid {
                    what: "obs recorder",
                    detail: "region births not sorted by id".into(),
                });
            }
            prev = Some(id);
            region_births.push((id, dec.take_u64()?));
        }
        let n = dec.take_count(32)?;
        let mut region_spans = Vec::with_capacity(n);
        for _ in 0..n {
            region_spans.push(RegionSpan::decode_from(dec)?);
        }
        Ok(ObsRecorder {
            epoch_shift,
            timeline,
            dropped,
            epochs,
            counts,
            miss_latency,
            recon_blocks,
            region_lifetime,
            region_births,
            region_spans,
            spans: SpanSet::new(),
            scratch: Vec::new(),
        })
    }
}

/// Time `f` under `name` when a recorder is present, or just run it.
pub(crate) fn timed<R>(rec: &mut Option<ObsRecorder>, name: &str, f: impl FnOnce() -> R) -> R {
    match rec {
        Some(r) => r.spans.time(name, f),
        None => f(),
    }
}

/// Everything the observability layer learned about one finished run.
///
/// The codec ([`Self::encode_into`]/[`Self::decode_from`]) carries the
/// metrics, epochs, timeline and region spans — the wall-clock [`SpanSet`]
/// profile is host-side and decodes as empty.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ObsReport {
    /// Epoch width exponent: epoch `i` covers cycles `[i << shift, (i+1)
    /// << shift)`.
    pub epoch_shift: u32,
    /// Named counters (per event kind, timeline accounting) and histograms
    /// (`miss_latency_cycles`, `recon_walk_blocks`,
    /// `region_lifetime_cycles`).
    pub metrics: MetricsRegistry,
    /// Dense per-epoch activity, indexed by epoch number.
    pub epochs: Vec<EpochSummary>,
    /// Cycle-stamped events, in drain order (bounded; see
    /// [`MAX_TIMELINE_EVENTS`]).
    pub timeline: Vec<TimedEvent>,
    /// Completed WARD regions as duration slices.
    pub region_spans: Vec<RegionSpan>,
    /// Events the timeline cap discarded (summaries still counted them).
    pub dropped_events: u64,
    /// Host wall-clock profile of the instrumented phases. Transient:
    /// excluded from the codec and from any determinism guarantee.
    pub spans: SpanSet,
}

impl ObsReport {
    /// Serialize the report (without the host-side span profile).
    pub fn encode_into(&self, enc: &mut Encoder) {
        enc.put_u32(self.epoch_shift);
        enc.put_u64(self.dropped_events);
        self.metrics.encode_into(enc);
        enc.put_usize(self.epochs.len());
        for e in &self.epochs {
            e.encode_into(enc);
        }
        enc.put_usize(self.timeline.len());
        for ev in &self.timeline {
            ev.encode_into(enc);
        }
        enc.put_usize(self.region_spans.len());
        for s in &self.region_spans {
            s.encode_into(enc);
        }
    }

    /// Decode a report serialized by [`Self::encode_into`] (its span
    /// profile comes back empty).
    pub fn decode_from(dec: &mut Decoder<'_>) -> Result<ObsReport, CodecError> {
        let epoch_shift = dec.take_u32()?;
        if epoch_shift >= 64 {
            return Err(CodecError::Invalid {
                what: "obs report",
                detail: format!("epoch shift {epoch_shift} out of range"),
            });
        }
        let dropped_events = dec.take_u64()?;
        let metrics = MetricsRegistry::decode_from(dec)?;
        let n = dec.take_count(88)?;
        let mut epochs = Vec::with_capacity(n);
        for _ in 0..n {
            epochs.push(EpochSummary::decode_from(dec)?);
        }
        let n = dec.take_count(17)?;
        let mut timeline = Vec::with_capacity(n);
        for _ in 0..n {
            timeline.push(TimedEvent::decode_from(dec)?);
        }
        let n = dec.take_count(32)?;
        let mut region_spans = Vec::with_capacity(n);
        for _ in 0..n {
            region_spans.push(RegionSpan::decode_from(dec)?);
        }
        Ok(ObsReport {
            epoch_shift,
            metrics,
            epochs,
            timeline,
            region_spans,
            dropped_events,
            spans: SpanSet::new(),
        })
    }

    /// Export the run as Chrome trace-event JSON (the format Perfetto and
    /// `chrome://tracing` open directly).
    ///
    /// Simulated cycles map 1:1 onto trace timestamps. Each core is a
    /// thread; protocol events are thread-scoped instants on the issuing
    /// core's track, completed WARD regions are duration slices on a
    /// dedicated `ward regions` track, and per-epoch activity renders as
    /// counter tracks sampled at each epoch boundary.
    pub fn trace_event_json(&self, label: &str) -> String {
        const PID: u32 = 1;
        const REGION_TID: u32 = 1000;
        let mut tb = TraceBuilder::new();
        tb.process_name(PID, label);
        let mut tids: Vec<u32> = self.timeline.iter().map(|e| e.core as u32).collect();
        tids.sort_unstable();
        tids.dedup();
        for &t in &tids {
            tb.thread_name(PID, t, &format!("core {t}"));
        }
        if !self.region_spans.is_empty() {
            tb.thread_name(PID, REGION_TID, "ward regions");
        }
        for te in &self.timeline {
            let tid = te.core as u32;
            match te.event {
                SimEvent::Protocol(p) => {
                    tb.instant(p.name(), te.cycle, PID, tid, protocol_args(&p));
                }
                SimEvent::FaultStall { core, cycles } => {
                    tb.instant(
                        "FaultStall",
                        te.cycle,
                        PID,
                        core as u32,
                        vec![("cycles".to_string(), ArgVal::U64(cycles))],
                    );
                }
                SimEvent::CheckpointFrame => {
                    tb.instant("CheckpointFrame", te.cycle, PID, tid, Vec::new());
                }
            }
        }
        for rs in &self.region_spans {
            tb.complete(
                "ward-region",
                rs.birth,
                rs.death - rs.birth,
                PID,
                REGION_TID,
                vec![
                    ("id".to_string(), ArgVal::U64(rs.id)),
                    ("blocks".to_string(), ArgVal::U64(rs.blocks)),
                ],
            );
        }
        for (i, e) in self.epochs.iter().enumerate() {
            let ts = (i as u64) << self.epoch_shift;
            tb.counter(
                "protocol activity",
                ts,
                PID,
                vec![
                    ("events".to_string(), ArgVal::U64(e.events)),
                    ("misses".to_string(), ArgVal::U64(e.misses)),
                    ("reconciles".to_string(), ArgVal::U64(e.reconciles)),
                ],
            );
        }
        tb.to_json()
    }

    /// Plain-text per-epoch activity table (one row per non-empty epoch).
    pub fn render_epochs(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>8} {:>12} {:>8} {:>8} {:>12} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "epoch",
            "start_cycle",
            "events",
            "misses",
            "miss_cyc",
            "recon",
            "radd",
            "rrem",
            "wsync",
            "rmwesc",
            "evict"
        );
        for (i, e) in self.epochs.iter().enumerate() {
            if e.is_empty() {
                continue;
            }
            let _ = writeln!(
                out,
                "{:>8} {:>12} {:>8} {:>8} {:>12} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
                i,
                (i as u64) << self.epoch_shift,
                e.events,
                e.misses,
                e.miss_cycles,
                e.reconciles,
                e.region_adds,
                e.region_removes,
                e.ward_entry_syncs,
                e.rmw_escapes,
                e.evictions
            );
        }
        out
    }

    /// Plain-text summary: event counts, histograms and (when the run was
    /// profiled on this host) the wall-clock span table.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== event counts ==");
        for (name, v) in self.metrics.counters() {
            let _ = writeln!(out, "{name:<24} {v}");
        }
        let _ = writeln!(out, "== histograms ==");
        for (name, h) in self.metrics.hists() {
            let _ = writeln!(out, "{name:<24} {h}");
        }
        if !self.spans.is_empty() {
            let _ = writeln!(out, "== host wall-clock spans ==");
            let _ = writeln!(out, "{}", self.spans);
        }
        out
    }
}

/// Perfetto args for a protocol event: enough to identify what it touched.
fn protocol_args(p: &ProtocolEvent) -> Vec<(String, ArgVal)> {
    let u = |name: &str, v: u64| (name.to_string(), ArgVal::U64(v));
    match *p {
        ProtocolEvent::GetS { block, .. }
        | ProtocolEvent::GetM { block, .. }
        | ProtocolEvent::RmwEscape { block, .. }
        | ProtocolEvent::PrivEviction { block, .. }
        | ProtocolEvent::LlcEviction { block, .. }
        | ProtocolEvent::WardEntrySync { block, .. } => vec![u("block", block.0)],
        ProtocolEvent::Reconcile {
            block,
            holders,
            writebacks,
            drops,
        } => vec![
            u("block", block.0),
            u("holders", holders as u64),
            u("writebacks", writebacks as u64),
            u("drops", drops as u64),
        ],
        ProtocolEvent::RegionAdd { id, start, end } => {
            vec![u("id", id), u("start", start.0), u("end", end.0)]
        }
        ProtocolEvent::RegionOverflow { start, end } => {
            vec![u("start", start.0), u("end", end.0)]
        }
        ProtocolEvent::RegionRemove { id, blocks } => vec![u("id", id), u("blocks", blocks)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warden_mem::BlockAddr;
    use warden_obs::validate_trace;

    fn sample_events() -> Vec<SimEvent> {
        vec![
            SimEvent::Protocol(ProtocolEvent::RmwEscape {
                core: 3,
                block: BlockAddr(0x40),
            }),
            SimEvent::FaultStall {
                core: 1,
                cycles: 250,
            },
            SimEvent::CheckpointFrame,
        ]
    }

    #[test]
    fn sim_event_codec_roundtrips_and_rejects_prefixes() {
        for ev in sample_events() {
            let mut enc = Encoder::new();
            ev.encode_into(&mut enc);
            let bytes = enc.into_bytes();
            let mut dec = Decoder::new(&bytes);
            assert_eq!(SimEvent::decode_from(&mut dec).unwrap(), ev);
            dec.finish().unwrap();
            for cut in 0..bytes.len() {
                let mut dec = Decoder::new(&bytes[..cut]);
                assert!(SimEvent::decode_from(&mut dec).is_err());
            }
        }
        let mut dec = Decoder::new(&[9]);
        assert!(matches!(
            SimEvent::decode_from(&mut dec),
            Err(CodecError::BadTag {
                what: "sim event",
                tag: 9
            })
        ));
    }

    #[test]
    fn recorder_builds_epochs_histograms_and_spans() {
        let mut rec = ObsRecorder::new();
        let e0 = 1u64 << DEFAULT_EPOCH_SHIFT;
        rec.note_access(10, 5, 12); // L2 hit: not a miss
        rec.note_access(10, 40, 12); // miss
        rec.record_protocol(
            20,
            0,
            ProtocolEvent::RegionAdd {
                id: 7,
                start: warden_mem::Addr(0),
                end: warden_mem::Addr(4096),
            },
        );
        rec.record_protocol(e0 + 1, 1, ProtocolEvent::RegionRemove { id: 7, blocks: 9 });
        rec.note_fault_stall(e0 + 2, 1, 77);
        rec.note_checkpoint_frame(e0 + 3);

        let rep = rec.into_report();
        assert_eq!(rep.epochs.len(), 2);
        assert_eq!(rep.epochs[0].misses, 1);
        assert_eq!(rep.epochs[0].miss_cycles, 40);
        assert_eq!(rep.epochs[0].region_adds, 1);
        assert_eq!(rep.epochs[1].region_removes, 1);
        assert_eq!(rep.epochs[1].fault_stall_cycles, 77);
        assert_eq!(rep.epochs[1].checkpoint_frames, 1);
        assert_eq!(rep.region_spans.len(), 1);
        let rs = rep.region_spans[0];
        assert_eq!((rs.id, rs.birth, rs.death, rs.blocks), (7, 20, e0 + 1, 9));
        assert_eq!(rep.metrics.counter("RegionAdd"), Some(1));
        assert_eq!(rep.metrics.counter("FaultStall"), Some(1));
        let lifetimes = rep.metrics.hist("region_lifetime_cycles").unwrap();
        assert_eq!(lifetimes.count(), 1);
        assert_eq!(lifetimes.max(), Some(e0 + 1 - 20));
        assert_eq!(rep.metrics.hist("recon_walk_blocks").unwrap().sum(), 9);
        assert_eq!(rep.metrics.hist("miss_latency_cycles").unwrap().count(), 1);
        assert_eq!(rep.timeline.len(), 4);
        assert_eq!(rep.dropped_events, 0);
    }

    #[test]
    fn report_codec_roundtrips_and_rejects_prefixes() {
        let mut rec = ObsRecorder::new();
        rec.note_access(3, 99, 12);
        rec.record_protocol(
            5,
            2,
            ProtocolEvent::GetS {
                core: 2,
                block: BlockAddr(0x80),
                dir: warden_coherence::DirKind::Uncached,
                ward: false,
            },
        );
        rec.note_fault_stall(6, 2, 11);
        let rep = rec.into_report();

        let mut enc = Encoder::new();
        rep.encode_into(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = ObsReport::decode_from(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(back, rep);

        // Canonical: re-encoding the decoded report is byte-identical.
        let mut enc2 = Encoder::new();
        back.encode_into(&mut enc2);
        assert_eq!(enc2.bytes(), &bytes[..]);

        for cut in 0..bytes.len() {
            let mut dec = Decoder::new(&bytes[..cut]);
            assert!(ObsReport::decode_from(&mut dec).is_err());
        }
    }

    #[test]
    fn recorder_state_roundtrips_without_the_span_profile() {
        let mut rec = ObsRecorder::new();
        rec.record_protocol(
            9,
            0,
            ProtocolEvent::RegionAdd {
                id: 3,
                start: warden_mem::Addr(0),
                end: warden_mem::Addr(4096),
            },
        );
        rec.note_access(9, 50, 12);
        rec.spans.add("access.load", 123);

        let mut enc = Encoder::new();
        rec.encode_state(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = ObsRecorder::decode_state(&mut dec).unwrap();
        dec.finish().unwrap();
        assert!(back.spans.is_empty(), "span profile is host-side");
        assert_eq!(back.region_births, rec.region_births);
        assert_eq!(back.timeline, rec.timeline);

        // Canonical re-encode (the checkpoint layer's core property).
        let mut enc2 = Encoder::new();
        back.encode_state(&mut enc2);
        assert_eq!(enc2.bytes(), &bytes[..]);

        for cut in 0..bytes.len() {
            let mut dec = Decoder::new(&bytes[..cut]);
            assert!(ObsRecorder::decode_state(&mut dec).is_err());
        }
    }

    #[test]
    fn timeline_cap_counts_drops() {
        let mut rec = ObsRecorder::new();
        rec.timeline = vec![
            TimedEvent {
                cycle: 0,
                core: 0,
                event: SimEvent::CheckpointFrame,
            };
            MAX_TIMELINE_EVENTS
        ];
        rec.note_fault_stall(1, 0, 1);
        assert_eq!(rec.timeline.len(), MAX_TIMELINE_EVENTS);
        assert_eq!(rec.dropped, 1);
        let rep = rec.into_report();
        assert_eq!(rep.dropped_events, 1);
        assert_eq!(rep.metrics.counter("timeline.dropped"), Some(1));
        // The epoch summary still saw the dropped event's effect.
        assert_eq!(rep.epochs[0].fault_stall_cycles, 1);
    }

    #[test]
    fn trace_export_is_wellformed_and_counts_match() {
        let mut rec = ObsRecorder::new();
        rec.record_protocol(
            2,
            0,
            ProtocolEvent::RegionAdd {
                id: 1,
                start: warden_mem::Addr(0),
                end: warden_mem::Addr(4096),
            },
        );
        rec.record_protocol(40, 1, ProtocolEvent::RegionRemove { id: 1, blocks: 3 });
        rec.note_fault_stall(50, 1, 5);
        let rep = rec.into_report();
        let json = rep.trace_event_json("unit \"test\"");
        let stats = validate_trace(&json).expect("well-formed trace");
        assert_eq!(stats.instants, 3, "two protocol events + one stall");
        assert_eq!(stats.complete, 1, "one region span");
        assert_eq!(stats.counters, rep.epochs.len());
        assert!(stats.metadata >= 3, "process + core threads + region track");
    }

    #[test]
    fn renderers_cover_activity() {
        let mut rec = ObsRecorder::new();
        rec.note_access(1, 80, 12);
        rec.record_protocol(1, 0, ProtocolEvent::RegionRemove { id: 5, blocks: 2 });
        rec.spans.add("access.load", 10);
        let rep = rec.into_report();
        let epochs = rep.render_epochs();
        assert!(epochs.contains("start_cycle"));
        assert!(epochs.lines().count() >= 2, "header plus one epoch row");
        let summary = rep.render_summary();
        assert!(summary.contains("RegionRemove"));
        assert!(summary.contains("miss_latency_cycles"));
        assert!(summary.contains("access.load"));
    }
}
