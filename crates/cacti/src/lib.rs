//! CACTI-lite: an analytical SRAM/CAM area model for the WARDen paper's
//! hardware-cost estimates (§6.1).
//!
//! The paper uses CACTI 7.0 to justify two numbers:
//!
//! 1. byte sectoring on 64-byte cache blocks adds **≈ 7.9%** cache area, and
//! 2. storage for 1024 simultaneous WARD regions adds **< 0.05%** area.
//!
//! Both follow from bit-count arithmetic over the cache arrays plus
//! published-ballpark constants for cell and peripheral area; this crate
//! reproduces that arithmetic with the constants documented and adjustable.
//! It also implements the paper's CAM *range comparator* trick (find the
//! most significant differing bit, then test it) and proves it equivalent to
//! ordinary comparison.
//!
//! # Example
//!
//! ```
//! use warden_cacti::{CacheBitBudget, RegionCam};
//!
//! let llc_line = CacheBitBudget::llc_line();
//! let overhead = llc_line.sectoring_overhead();
//! assert!((overhead - 0.079).abs() < 0.005, "≈7.9% (got {overhead})");
//!
//! let cam = RegionCam::paper();
//! let frac = cam.area_fraction_of(CacheBitBudget::total_chip_bits(12));
//! assert!(frac < 0.0005, "<0.05% (got {frac})");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Per-line bit budget of one cache array, used to express metadata overheads
/// as fractions of total line area.
///
/// "Caches already include substantial metadata including tag bits, coherence
/// state bits, sharer bitmasks in the LLC, and the overhead of SECDED codes"
/// (paper §6.1) — each of those is a field here.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CacheBitBudget {
    /// Data bits per line (64 B blocks = 512).
    pub data_bits: u64,
    /// Tag bits per line.
    pub tag_bits: u64,
    /// Coherence-state bits per line.
    pub state_bits: u64,
    /// SECDED check bits per line (8 bits per 64-bit word on a 64 B line).
    pub secded_bits: u64,
    /// Replacement-policy bits per line.
    pub lru_bits: u64,
    /// Sharer-bitmask bits per line (LLC/directory lines only).
    pub sharer_bits: u64,
    /// Peripheral area (decoders, wordline drivers, sense amplifiers,
    /// H-tree wiring) expressed in bit-equivalents per line. Existing rows
    /// already pay this; appended sector bits reuse the row periphery, which
    /// is why the marginal cost of sectoring is below the naive 12.5%.
    pub peripheral_bit_equiv: u64,
}

impl CacheBitBudget {
    /// The budget of one LLC/directory line in the paper's machine
    /// (64 B block, 40-bit tags, MESI state, SECDED, sharer bitmask for up
    /// to 64 cores, calibrated periphery).
    pub fn llc_line() -> CacheBitBudget {
        CacheBitBudget {
            data_bits: 512,
            tag_bits: 40,
            state_bits: 4,
            secded_bits: 64,
            lru_bits: 5,
            sharer_bits: 64,
            peripheral_bit_equiv: 121,
        }
    }

    /// The budget of one private (L1/L2) line: no sharer bitmask.
    pub fn private_line() -> CacheBitBudget {
        CacheBitBudget {
            sharer_bits: 0,
            ..CacheBitBudget::llc_line()
        }
    }

    /// Total bit-equivalents per line before sectoring.
    pub fn line_bits(&self) -> u64 {
        self.data_bits
            + self.tag_bits
            + self.state_bits
            + self.secded_bits
            + self.lru_bits
            + self.sharer_bits
            + self.peripheral_bit_equiv
    }

    /// Bits added by byte sectoring: one write flag per data byte
    /// (paper §6.1: "one bit for every eight data bits").
    pub fn sector_bits(&self) -> u64 {
        self.data_bits / 8
    }

    /// Fractional area overhead of byte sectoring for this array.
    ///
    /// For the paper's LLC line this evaluates to ≈ 7.9%.
    pub fn sectoring_overhead(&self) -> f64 {
        self.sector_bits() as f64 / self.line_bits() as f64
    }

    /// Total cache bit-equivalents of the paper's chip: per core a 32 KiB L1
    /// and 256 KiB L2, plus 2.5 MiB of LLC per core.
    pub fn total_chip_bits(cores: u64) -> f64 {
        let lines = |bytes: u64| bytes / 64;
        let private = CacheBitBudget::private_line().line_bits() as f64
            * (lines(32 * 1024) + lines(256 * 1024)) as f64
            * cores as f64;
        let shared =
            CacheBitBudget::llc_line().line_bits() as f64 * lines(2_621_440) as f64 * cores as f64;
        private + shared
    }
}

/// Area model of the WARD region store: a fully associative CAM of
/// begin/end pointer pairs (paper §6.1: "2 pointers (16 bytes)"; we model
/// the physically stored address bits).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RegionCam {
    /// Number of simultaneous regions supported.
    pub entries: u64,
    /// Stored bits per pointer (virtual address bits above page offset).
    pub bits_per_pointer: u64,
    /// Area of one CAM cell relative to one SRAM cell (comparators make CAM
    /// cells bigger; the paper notes this structure is "substantially
    /// simpler than TCAM").
    pub cam_cell_factor: f64,
}

impl RegionCam {
    /// The paper's configuration: 1024 regions, 48-bit virtual addresses
    /// with 12 page-offset bits stored implicitly.
    pub fn paper() -> RegionCam {
        RegionCam {
            entries: 1024,
            bits_per_pointer: 36,
            cam_cell_factor: 2.0,
        }
    }

    /// Total SRAM-bit-equivalents of the CAM.
    pub fn bit_equivalents(&self) -> f64 {
        (self.entries * 2 * self.bits_per_pointer) as f64 * self.cam_cell_factor
    }

    /// The CAM's area as a fraction of `total_cache_bits`.
    ///
    /// For the paper's 12-core chip this is below 0.05%.
    pub fn area_fraction_of(&self, total_cache_bits: f64) -> f64 {
        self.bit_equivalents() / total_cache_bits
    }
}

/// The paper's CAM range-comparator (§6.1): "use the CAM's per-bit equality
/// comparator to determine the most significant bit that differs between the
/// region boundary and the address. Then check the value of the differing
/// bit. If the address bit is 1, the address is greater."
///
/// Returns whether `addr > boundary`, computed exactly as that hardware
/// would.
///
/// # Example
///
/// ```
/// use warden_cacti::cam_greater;
/// assert!(cam_greater(0x2000, 0x1fff));
/// assert!(!cam_greater(0x1000, 0x1000));
/// ```
pub fn cam_greater(addr: u64, boundary: u64) -> bool {
    let diff = addr ^ boundary;
    if diff == 0 {
        return false; // equal: no differing bit
    }
    let msb = 63 - diff.leading_zeros() as u64;
    addr & (1 << msb) != 0
}

/// Range membership test built from two [`cam_greater`] comparators, as the
/// paper's lookup does: "to pass the check, an address must be greater than
/// the lower bound and less than the upper bound". Bounds follow the WARD
/// region convention `[start, end)`.
pub fn cam_in_range(addr: u64, start: u64, end: u64) -> bool {
    // addr >= start  ⇔  !(start > addr);  addr < end  ⇔  end > addr.
    !cam_greater(start, addr) && cam_greater(end, addr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sectoring_overhead_matches_paper() {
        let o = CacheBitBudget::llc_line().sectoring_overhead();
        assert!((o - 0.079).abs() < 0.005, "expected ≈7.9%, got {o}");
    }

    #[test]
    fn sector_bits_are_one_per_byte() {
        assert_eq!(CacheBitBudget::llc_line().sector_bits(), 64);
    }

    #[test]
    fn region_cam_under_half_permille() {
        let frac = RegionCam::paper().area_fraction_of(CacheBitBudget::total_chip_bits(12));
        assert!(frac < 0.0005, "expected <0.05%, got {frac}");
        assert!(frac > 0.0, "model must be positive");
    }

    #[test]
    fn private_line_has_no_sharers() {
        assert_eq!(CacheBitBudget::private_line().sharer_bits, 0);
        assert!(
            CacheBitBudget::private_line().line_bits() < CacheBitBudget::llc_line().line_bits()
        );
    }

    #[test]
    fn cam_greater_equals_native_comparison() {
        let samples = [
            0u64,
            1,
            2,
            0xfff,
            0x1000,
            0x1001,
            u64::MAX,
            u64::MAX - 1,
            1 << 63,
            (1 << 63) - 1,
            0xdead_beef,
        ];
        for &a in &samples {
            for &b in &samples {
                assert_eq!(cam_greater(a, b), a > b, "a={a:#x} b={b:#x}");
            }
        }
    }

    #[test]
    fn cam_in_range_matches_interval() {
        assert!(cam_in_range(0x1000, 0x1000, 0x2000)); // inclusive start
        assert!(cam_in_range(0x1fff, 0x1000, 0x2000));
        assert!(!cam_in_range(0x2000, 0x1000, 0x2000)); // exclusive end
        assert!(!cam_in_range(0x0fff, 0x1000, 0x2000));
    }

    #[test]
    fn bigger_cam_costs_more() {
        let small = RegionCam {
            entries: 16,
            ..RegionCam::paper()
        };
        assert!(small.bit_equivalents() < RegionCam::paper().bit_equivalents());
    }

    #[test]
    fn total_chip_bits_scales_with_cores() {
        assert!(CacheBitBudget::total_chip_bits(24) > 1.9 * CacheBitBudget::total_chip_bits(12));
    }
}
