//! Oracle-based property tests: `CacheArray` must behave exactly like a
//! reference model (per-set LRU lists), and `WriteMask`/`BlockData` merging
//! must match naive byte-level bookkeeping.

use proptest::prelude::*;
use std::collections::HashMap;
use warden_mem::{BlockAddr, BlockData, CacheArray, CacheGeometry, WriteMask};

/// A straightforward LRU model: one Vec per set, most-recent at the back.
struct ModelCache {
    geometry: CacheGeometry,
    sets: HashMap<u64, Vec<(u64, u32)>>,
}

impl ModelCache {
    fn new(geometry: CacheGeometry) -> ModelCache {
        ModelCache {
            geometry,
            sets: HashMap::new(),
        }
    }

    fn get(&mut self, block: u64) -> Option<u32> {
        let set = self
            .sets
            .entry(self.geometry.set_of(BlockAddr(block)))
            .or_default();
        let pos = set.iter().position(|&(b, _)| b == block)?;
        let entry = set.remove(pos);
        set.push(entry);
        Some(entry.1)
    }

    fn insert(&mut self, block: u64, v: u32) -> Option<(u64, u32)> {
        let ways = self.geometry.associativity() as usize;
        let set = self
            .sets
            .entry(self.geometry.set_of(BlockAddr(block)))
            .or_default();
        if let Some(pos) = set.iter().position(|&(b, _)| b == block) {
            set.remove(pos);
            set.push((block, v));
            return None;
        }
        let evicted = if set.len() == ways {
            Some(set.remove(0))
        } else {
            None
        };
        set.push((block, v));
        evicted
    }

    fn invalidate(&mut self, block: u64) -> Option<u32> {
        let set = self
            .sets
            .entry(self.geometry.set_of(BlockAddr(block)))
            .or_default();
        let pos = set.iter().position(|&(b, _)| b == block)?;
        Some(set.remove(pos).1)
    }
}

#[derive(Clone, Debug)]
enum Op {
    Get(u64),
    Insert(u64, u32),
    Invalidate(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..64).prop_map(Op::Get),
        (0u64..64, any::<u32>()).prop_map(|(b, v)| Op::Insert(b, v)),
        (0u64..64).prop_map(Op::Invalidate),
    ]
}

proptest! {
    #[test]
    fn cache_array_matches_lru_model(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let geometry = CacheGeometry::new(1024, 2); // 8 sets, 2 ways
        let mut real: CacheArray<u32> = CacheArray::new(geometry);
        let mut model = ModelCache::new(geometry);
        for op in ops {
            match op {
                Op::Get(b) => {
                    prop_assert_eq!(real.get(BlockAddr(b)).copied(), model.get(b));
                }
                Op::Insert(b, v) => {
                    let re = real.insert(BlockAddr(b), v).map(|e| (e.block.0, e.payload));
                    let me = model.insert(b, v);
                    prop_assert_eq!(re, me);
                }
                Op::Invalidate(b) => {
                    prop_assert_eq!(real.invalidate(BlockAddr(b)), model.invalidate(b));
                }
            }
        }
        let model_len: usize = model.sets.values().map(|s| s.len()).sum();
        prop_assert_eq!(real.len(), model_len);
    }

    #[test]
    fn masked_merges_match_byte_bookkeeping(
        writes in proptest::collection::vec((0u64..64, 1u64..9, any::<u8>(), 0usize..3), 1..60)
    ) {
        // Three "cores" write byte ranges; merging their masked copies into
        // a base block must equal naive last-writer bookkeeping per byte,
        // as long as ranges written by different cores do not overlap.
        let mut owner: [Option<usize>; 64] = [None; 64];
        let mut expected = [0u8; 64];
        let mut copies = [(BlockData::zeroed(), WriteMask::empty()); 3];
        for (start, len, val, core) in writes {
            let len = len.min(64 - start);
            if len == 0 { continue; }
            // Skip writes that would overlap another core's bytes (that
            // would be a true-WAW race with order-dependent outcome).
            let range = start as usize..(start + len) as usize;
            if range.clone().any(|i| owner[i].is_some_and(|o| o != core)) {
                continue;
            }
            for i in range.clone() {
                owner[i] = Some(core);
                expected[i] = val;
            }
            let bytes = vec![val; len as usize];
            copies[core].0.write(start, &bytes);
            copies[core].1.set_range(start, len);
        }
        let mut merged = BlockData::zeroed();
        for (data, mask) in &copies {
            merged.merge_from(data, *mask);
        }
        prop_assert_eq!(merged.bytes(), &expected);
    }
}
