//! Sparse backing memory holding real data bytes.

use crate::codec::{CodecError, Decoder, Encoder};
use crate::{Addr, BlockAddr, BlockData, PageAddr, PageMap, BLOCK_SIZE, PAGE_SIZE};
use std::fmt;

/// A sparse, page-granular simulated main memory.
///
/// Pages materialize (zero-filled) on first touch. The HLPL runtime computes
/// program results directly in a `Memory`, and the coherence simulators move
/// `BlockData` between it and the caches, so final memory images can be
/// compared between protocols.
///
/// # Example
///
/// ```
/// use warden_mem::{Addr, Memory};
/// let mut mem = Memory::new();
/// mem.write_bytes(Addr(100), &[1, 2, 3]);
/// assert_eq!(mem.read_u8(Addr(101)), 2);
/// // Untouched memory reads as zero.
/// assert_eq!(mem.read_u64(Addr(1 << 40)), 0);
/// ```
#[derive(Clone, Default)]
pub struct Memory {
    /// Flat page table: dense over the program's address span, spilling to
    /// a hash map only for far outliers (see [`PageMap`]).
    pages: PageMap<Box<[u8; PAGE_SIZE as usize]>>,
}

impl Memory {
    /// An empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Number of materialized pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    fn page_mut(&mut self, page: PageAddr) -> &mut [u8; PAGE_SIZE as usize] {
        self.pages
            .or_insert_with(page, || Box::new([0; PAGE_SIZE as usize]))
    }

    /// Read `dst.len()` bytes starting at `addr`. May cross page boundaries.
    pub fn read_bytes(&self, addr: Addr, dst: &mut [u8]) {
        let mut cur = addr;
        let mut done = 0;
        while done < dst.len() {
            let in_page = (PAGE_SIZE - cur.page_offset()) as usize;
            let n = in_page.min(dst.len() - done);
            match self.pages.get(cur.page()) {
                Some(p) => {
                    let off = cur.page_offset() as usize;
                    dst[done..done + n].copy_from_slice(&p[off..off + n]);
                }
                None => dst[done..done + n].fill(0),
            }
            done += n;
            cur += n as u64;
        }
    }

    /// Write `src` starting at `addr`. May cross page boundaries.
    pub fn write_bytes(&mut self, addr: Addr, src: &[u8]) {
        let mut cur = addr;
        let mut done = 0;
        while done < src.len() {
            let in_page = (PAGE_SIZE - cur.page_offset()) as usize;
            let n = in_page.min(src.len() - done);
            let off = cur.page_offset() as usize;
            self.page_mut(cur.page())[off..off + n].copy_from_slice(&src[done..done + n]);
            done += n;
            cur += n as u64;
        }
    }

    /// Read one byte.
    pub fn read_u8(&self, addr: Addr) -> u8 {
        let mut b = [0u8; 1];
        self.read_bytes(addr, &mut b);
        b[0]
    }

    /// Write one byte.
    pub fn write_u8(&mut self, addr: Addr, v: u8) {
        self.write_bytes(addr, &[v]);
    }

    /// Read a little-endian `u64`.
    pub fn read_u64(&self, addr: Addr) -> u64 {
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Write a little-endian `u64`.
    pub fn write_u64(&mut self, addr: Addr, v: u64) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Read a whole cache block.
    pub fn read_block(&self, block: BlockAddr) -> BlockData {
        let mut data = BlockData::zeroed();
        self.read_bytes(block.base(), data.bytes_mut());
        data
    }

    /// Write a whole cache block.
    pub fn write_block(&mut self, block: BlockAddr, data: &BlockData) {
        self.write_bytes(block.base(), data.bytes());
    }

    /// The resident pages in ascending address order (all-zero pages are
    /// skipped: they are indistinguishable from absent pages).
    pub fn resident(&self) -> Vec<(PageAddr, &[u8; PAGE_SIZE as usize])> {
        let mut out: Vec<(PageAddr, &[u8; PAGE_SIZE as usize])> = self
            .pages
            .iter()
            .filter(|(_, data)| data.iter().any(|&b| b != 0))
            .map(|(p, data)| (p, &**data))
            .collect();
        out.sort_by_key(|&(p, _)| p);
        out
    }

    /// A content digest of the memory image (FNV-1a folded over 64-bit
    /// little-endian words of each resident page in address order, skipping
    /// all-zero pages so that an untouched page and an absent page hash
    /// identically). Hashing word-at-a-time instead of byte-at-a-time makes
    /// the digest ~8× cheaper — it dominates end-of-run accounting on
    /// multi-megabyte images. Two memories with equal digests are equal
    /// with overwhelming probability; use [`Self::first_difference`] for an
    /// exact check.
    pub fn digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x1000_0000_01b3;
        let mut pages: Vec<(PageAddr, &[u8; PAGE_SIZE as usize])> =
            self.pages.iter().map(|(p, data)| (p, &**data)).collect();
        pages.sort_by_key(|&(p, _)| p);
        let mut h = FNV_OFFSET;
        for (p, data) in pages {
            // PAGE_SIZE is a multiple of 32, so the page splits exactly into
            // groups of four u64 words.
            let words = data
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
            if words.clone().all(|w| w == 0) {
                continue;
            }
            h = (h ^ p.0).wrapping_mul(FNV_PRIME);
            // Four independent FNV lanes folded at the end: a single chain is
            // one dependent multiply per word, and its latency alone is a
            // visible slice of a multi-megabyte final-image hash.
            let mut lanes = [h, h ^ FNV_PRIME, h.rotate_left(17), h.rotate_left(43)];
            let mut it = words;
            while let (Some(a), Some(b), Some(c), Some(d)) =
                (it.next(), it.next(), it.next(), it.next())
            {
                lanes[0] = (lanes[0] ^ a).wrapping_mul(FNV_PRIME);
                lanes[1] = (lanes[1] ^ b).wrapping_mul(FNV_PRIME);
                lanes[2] = (lanes[2] ^ c).wrapping_mul(FNV_PRIME);
                lanes[3] = (lanes[3] ^ d).wrapping_mul(FNV_PRIME);
            }
            for lane in lanes {
                h = (h ^ lane).wrapping_mul(FNV_PRIME);
            }
        }
        h
    }

    /// Serialize the full memory image (every resident page, including
    /// all-zero ones, in ascending address order). Keeping zero pages makes a
    /// decoded memory structurally identical to the original, not just
    /// semantically equal — a checkpointed run must resume with the exact
    /// page map it was snapshotted with.
    pub fn encode_into(&self, enc: &mut Encoder) {
        let mut pages: Vec<(PageAddr, &[u8; PAGE_SIZE as usize])> =
            self.pages.iter().map(|(p, data)| (p, &**data)).collect();
        pages.sort_by_key(|&(p, _)| p);
        enc.put_usize(pages.len());
        for (p, data) in pages {
            enc.put_u64(p.0);
            enc.put_raw(&data[..]);
        }
    }

    /// Decode a memory image produced by [`Self::encode_into`].
    pub fn decode_from(dec: &mut Decoder<'_>) -> Result<Memory, CodecError> {
        let n = dec.take_count(8 + PAGE_SIZE as usize)?;
        let mut pages = PageMap::new();
        let mut last: Option<u64> = None;
        for _ in 0..n {
            let addr = dec.take_u64()?;
            if last.is_some_and(|prev| addr <= prev) {
                return Err(CodecError::Invalid {
                    what: "memory page",
                    detail: format!("page {addr:#x} out of order"),
                });
            }
            last = Some(addr);
            let raw = dec.take_raw(PAGE_SIZE as usize)?;
            let mut data = Box::new([0u8; PAGE_SIZE as usize]);
            data.copy_from_slice(raw);
            pages.insert(PageAddr(addr), data);
        }
        Ok(Memory { pages })
    }

    /// Compare two memories over a byte range, returning the first differing
    /// address (useful in tests comparing protocol end states).
    pub fn first_difference(&self, other: &Memory, start: Addr, len: u64) -> Option<Addr> {
        let mut cur = start;
        let end_excl = Addr(start.0 + len);
        let mut a = [0u8; BLOCK_SIZE as usize];
        let mut b = [0u8; BLOCK_SIZE as usize];
        while cur < end_excl {
            let n = (BLOCK_SIZE.min(end_excl - cur)) as usize;
            self.read_bytes(cur, &mut a[..n]);
            other.read_bytes(cur, &mut b[..n]);
            if let Some(i) = (0..n).find(|&i| a[i] != b[i]) {
                return Some(cur + i as u64);
            }
            cur += n as u64;
        }
        None
    }
}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Memory({} resident pages)", self.pages.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_on_first_touch() {
        let mem = Memory::new();
        assert_eq!(mem.read_u64(Addr(0xdead_0000)), 0);
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn rw_roundtrip_u64() {
        let mut mem = Memory::new();
        mem.write_u64(Addr(8), 0x0102_0304_0506_0708);
        assert_eq!(mem.read_u64(Addr(8)), 0x0102_0304_0506_0708);
        // Little-endian layout.
        assert_eq!(mem.read_u8(Addr(8)), 0x08);
    }

    #[test]
    fn cross_page_write_and_read() {
        let mut mem = Memory::new();
        let addr = Addr(PAGE_SIZE - 3);
        mem.write_bytes(addr, &[1, 2, 3, 4, 5, 6]);
        let mut out = [0u8; 6];
        mem.read_bytes(addr, &mut out);
        assert_eq!(out, [1, 2, 3, 4, 5, 6]);
        assert_eq!(mem.resident_pages(), 2);
    }

    #[test]
    fn block_roundtrip() {
        let mut mem = Memory::new();
        let mut data = BlockData::zeroed();
        data.write(0, &[7; 64]);
        mem.write_block(BlockAddr(3), &data);
        assert_eq!(mem.read_block(BlockAddr(3)), data);
    }

    #[test]
    fn first_difference_finds_exact_byte() {
        let mut a = Memory::new();
        let mut b = Memory::new();
        a.write_bytes(Addr(0), &[0; 200]);
        b.write_bytes(Addr(0), &[0; 200]);
        b.write_u8(Addr(131), 9);
        assert_eq!(a.first_difference(&b, Addr(0), 200), Some(Addr(131)));
        assert_eq!(a.first_difference(&b, Addr(0), 131), None);
    }

    #[test]
    fn digest_ignores_zero_pages() {
        let mut a = Memory::new();
        let b = Memory::new();
        // Touch a page with zeros only: digest must equal the empty memory.
        a.write_bytes(Addr(0), &[0; 64]);
        assert_eq!(a.digest(), b.digest());
        a.write_u8(Addr(1), 1);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn digest_is_order_insensitive_to_write_order() {
        let mut a = Memory::new();
        a.write_u8(Addr(0), 1);
        a.write_u8(Addr(PAGE_SIZE), 2);
        let mut b = Memory::new();
        b.write_u8(Addr(PAGE_SIZE), 2);
        b.write_u8(Addr(0), 1);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn codec_roundtrip_preserves_exact_page_map() {
        let mut m = Memory::new();
        m.write_u64(Addr(16), 0xfeed);
        m.write_bytes(Addr(3 * PAGE_SIZE - 2), &[9; 5]);
        m.write_bytes(Addr(10 * PAGE_SIZE), &[0; 8]); // resident all-zero page
        let mut enc = crate::codec::Encoder::new();
        m.encode_into(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = crate::codec::Decoder::new(&bytes);
        let back = Memory::decode_from(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(back.resident_pages(), m.resident_pages());
        assert_eq!(back.digest(), m.digest());
        assert_eq!(m.first_difference(&back, Addr(0), 12 * PAGE_SIZE), None);
    }

    #[test]
    fn codec_rejects_out_of_order_pages() {
        let mut enc = crate::codec::Encoder::new();
        enc.put_usize(2);
        enc.put_u64(5);
        enc.put_raw(&[0; PAGE_SIZE as usize]);
        enc.put_u64(5); // duplicate / not strictly ascending
        enc.put_raw(&[0; PAGE_SIZE as usize]);
        let bytes = enc.into_bytes();
        let mut dec = crate::codec::Decoder::new(&bytes);
        assert!(Memory::decode_from(&mut dec).is_err());
    }

    #[test]
    fn first_difference_none_when_equal() {
        let mut a = Memory::new();
        a.write_u64(Addr(16), 5);
        let b = a.clone();
        assert_eq!(a.first_difference(&b, Addr(0), 4096), None);
    }
}
