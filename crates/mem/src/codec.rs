//! A tiny, dependency-free binary codec used by the checkpoint subsystem.
//!
//! The workspace is built offline (no serde), so simulation snapshots are
//! serialized by hand through this pair of cursor types. The encoding is
//! deliberately boring: little-endian fixed-width integers, length-prefixed
//! byte strings, and nothing self-describing — framing, versioning and
//! checksumming live one layer up (see `warden-sim`'s `checkpoint` module).
//!
//! Every `take_*` method is total: malformed or truncated input produces a
//! typed [`CodecError`], never a panic, so torn checkpoint files can be
//! rejected gracefully.

use std::fmt;

/// Why a byte stream could not be decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The stream ended before a value's bytes were available.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that were actually left.
        available: usize,
    },
    /// An enum tag or flag byte had no defined meaning.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending tag value.
        tag: u64,
    },
    /// A structurally valid value violated a domain constraint.
    Invalid {
        /// What was being decoded.
        what: &'static str,
        /// Specifics.
        detail: String,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, available } => {
                write!(
                    f,
                    "truncated stream: needed {needed} bytes, {available} left"
                )
            }
            CodecError::BadTag { what, tag } => write!(f, "bad tag {tag} while decoding {what}"),
            CodecError::Invalid { what, detail } => write!(f, "invalid {what}: {detail}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// FNV-1a 64-bit hash over a byte slice (the checksum and fingerprint
/// primitive of the checkpoint format).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x1000_0000_01b3;
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// An append-only byte sink.
#[derive(Clone, Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The encoded bytes so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consume the encoder, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append a boolean as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Append an `f64` by bit pattern (exact round trip, including NaN
    /// payloads — checkpointed energy accumulators must resume bit-identical).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append raw bytes with no length prefix (fixed-size fields).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append a length-prefixed byte string.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_usize(bytes.len());
        self.put_raw(bytes);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }
}

/// A forward-only cursor over encoded bytes.
#[derive(Clone, Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Decoder<'a> {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the stream is exhausted.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Fail unless every byte was consumed (guards against version skew
    /// silently ignoring trailing state).
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(CodecError::Invalid {
                what: "stream end",
                detail: format!("{} unconsumed trailing bytes", self.remaining()),
            })
        }
    }

    /// Take `n` raw bytes.
    pub fn take_raw(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Take one byte.
    pub fn take_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take_raw(1)?[0])
    }

    /// Take a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take_raw(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Take a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take_raw(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Take a `u64` and narrow it to `usize`.
    pub fn take_usize(&mut self) -> Result<usize, CodecError> {
        let v = self.take_u64()?;
        usize::try_from(v).map_err(|_| CodecError::Invalid {
            what: "usize",
            detail: format!("{v} does not fit this platform's usize"),
        })
    }

    /// Take a boolean byte (anything other than 0/1 is rejected).
    pub fn take_bool(&mut self) -> Result<bool, CodecError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(CodecError::BadTag {
                what: "bool",
                tag: t as u64,
            }),
        }
    }

    /// Take an `f64` by bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Take a length-prefixed byte string.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.take_usize()?;
        self.take_raw(n)
    }

    /// Take a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String, CodecError> {
        let b = self.take_bytes()?;
        String::from_utf8(b.to_vec()).map_err(|e| CodecError::Invalid {
            what: "utf-8 string",
            detail: e.to_string(),
        })
    }

    /// Take a `u64` element count, guarded against lengths that could not
    /// possibly fit in the remaining bytes (`min_elem_bytes` per element).
    /// This keeps corrupted counts from triggering huge allocations.
    pub fn take_count(&mut self, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let n = self.take_usize()?;
        let bound = self.remaining() / min_elem_bytes.max(1);
        if n > bound {
            return Err(CodecError::Invalid {
                what: "element count",
                detail: format!("{n} elements cannot fit in {} bytes", self.remaining()),
            });
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut e = Encoder::new();
        e.put_u8(7);
        e.put_u32(0xDEAD_BEEF);
        e.put_u64(u64::MAX);
        e.put_bool(true);
        e.put_f64(-0.0);
        e.put_str("warden");
        e.put_bytes(&[1, 2, 3]);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.take_u8().unwrap(), 7);
        assert_eq!(d.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.take_u64().unwrap(), u64::MAX);
        assert!(d.take_bool().unwrap());
        assert_eq!(d.take_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(d.take_str().unwrap(), "warden");
        assert_eq!(d.take_bytes().unwrap(), &[1, 2, 3]);
        d.finish().unwrap();
    }

    #[test]
    fn every_truncation_is_detected() {
        let mut e = Encoder::new();
        e.put_u64(42);
        e.put_str("abc");
        e.put_bool(false);
        let bytes = e.into_bytes();
        for n in 0..bytes.len() {
            let mut d = Decoder::new(&bytes[..n]);
            let r = (|| -> Result<(), CodecError> {
                d.take_u64()?;
                d.take_str()?;
                d.take_bool()?;
                Ok(())
            })();
            assert!(r.is_err(), "prefix of {n} bytes must fail");
        }
    }

    #[test]
    fn bad_bool_tag_rejected() {
        let mut d = Decoder::new(&[2]);
        assert!(matches!(d.take_bool(), Err(CodecError::BadTag { .. })));
    }

    #[test]
    fn trailing_bytes_rejected_by_finish() {
        let mut d = Decoder::new(&[0; 9]);
        d.take_u64().unwrap();
        assert!(d.finish().is_err());
    }

    #[test]
    fn absurd_count_rejected_without_allocation() {
        let mut e = Encoder::new();
        e.put_u64(u64::MAX / 2);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert!(d.take_count(8).is_err());
    }

    #[test]
    fn fnv_is_stable() {
        // The empty hash is the offset basis; the prime matches the one
        // Memory::digest has always used, so these values are frozen — a
        // change here would invalidate existing checkpoints.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf74_d84c_8601_ec8c);
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ba"));
    }
}
