//! Memory substrate for the WARDen reproduction.
//!
//! This crate provides the low-level building blocks shared by the coherence
//! protocol ([`warden-coherence`]), the timing simulator ([`warden-sim`]), and
//! the HLPL runtime ([`warden-rt`]):
//!
//! * [`Addr`] / [`BlockAddr`] / [`PageAddr`] — typed simulated addresses with
//!   cache-block and page arithmetic,
//! * [`CacheGeometry`] and [`CacheArray`] — set-associative cache structures
//!   with LRU replacement,
//! * [`WriteMask`] and [`BlockData`] — byte-sectored cache blocks, the
//!   hardware mechanism WARDen's reconciliation relies on (paper §6.1),
//! * [`Memory`] — a sparse backing store holding *real data bytes*, which lets
//!   the test suite check that WARDen's unordered write reconciliation
//!   produces the same final memory image as plain MESI.
//!
//! # Example
//!
//! ```
//! use warden_mem::{Addr, Memory, BLOCK_SIZE};
//!
//! let mut mem = Memory::new();
//! mem.write_u64(Addr(0x1000), 42);
//! assert_eq!(mem.read_u64(Addr(0x1000)), 42);
//! assert_eq!(Addr(0x1000).block(), Addr(0x1040).block() - 1);
//! assert_eq!(BLOCK_SIZE, 64);
//! ```
//!
//! [`warden-coherence`]: ../warden_coherence/index.html
//! [`warden-sim`]: ../warden_sim/index.html
//! [`warden-rt`]: ../warden_rt/index.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod array;
mod block;
pub mod codec;
mod geometry;
mod memory;
mod pagemap;
mod sector;

pub use addr::{Addr, BlockAddr, PageAddr, BLOCK_SHIFT, BLOCK_SIZE, PAGE_SHIFT, PAGE_SIZE};
pub use array::{CacheArray, Evicted, LookupMut, Slot};
pub use block::BlockData;
pub use geometry::CacheGeometry;
pub use memory::Memory;
pub use pagemap::PageMap;
pub use sector::WriteMask;
