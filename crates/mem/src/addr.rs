//! Typed simulated addresses and block/page arithmetic.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Cache block (line) size in bytes. Matches the paper's Table 2 (64 B).
pub const BLOCK_SIZE: u64 = 64;
/// `log2(BLOCK_SIZE)`.
pub const BLOCK_SHIFT: u32 = 6;
/// Heap page size in bytes used by the MPL-style runtime (4 KiB).
pub const PAGE_SIZE: u64 = 4096;
/// `log2(PAGE_SIZE)`.
pub const PAGE_SHIFT: u32 = 12;

/// A byte address in the simulated (virtual) address space.
///
/// Addresses are plain 64-bit values; the runtime allocates them from a
/// monotonically increasing bump pointer, so address reuse never occurs and
/// every page belongs to exactly one heap for the whole run.
///
/// # Example
///
/// ```
/// use warden_mem::{Addr, BLOCK_SIZE};
/// let a = Addr(130);
/// assert_eq!(a.block().base(), Addr(128));
/// assert_eq!(a.block_offset(), 2);
/// assert_eq!((a + BLOCK_SIZE).block(), a.block() + 1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The cache block containing this address.
    pub fn block(self) -> BlockAddr {
        BlockAddr(self.0 >> BLOCK_SHIFT)
    }

    /// The page containing this address.
    pub fn page(self) -> PageAddr {
        PageAddr(self.0 >> PAGE_SHIFT)
    }

    /// Byte offset of this address within its cache block (`0..64`).
    pub fn block_offset(self) -> u64 {
        self.0 & (BLOCK_SIZE - 1)
    }

    /// Byte offset of this address within its page (`0..4096`).
    pub fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// Checked addition, mirroring `u64::checked_add`.
    pub fn checked_add(self, rhs: u64) -> Option<Addr> {
        self.0.checked_add(rhs).map(Addr)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl Add<u64> for Addr {
    type Output = Addr;
    fn add(self, rhs: u64) -> Addr {
        Addr(self.0 + rhs)
    }
}

impl AddAssign<u64> for Addr {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Addr> for Addr {
    type Output = u64;
    fn sub(self, rhs: Addr) -> u64 {
        self.0 - rhs.0
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Addr {
        Addr(v)
    }
}

/// A cache-block number (byte address divided by [`BLOCK_SIZE`]).
///
/// Using a distinct type for block numbers keeps directory and cache-array
/// code from accidentally mixing byte addresses with block indices
/// (C-NEWTYPE).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr(pub u64);

impl BlockAddr {
    /// The first byte address of this block.
    pub fn base(self) -> Addr {
        Addr(self.0 << BLOCK_SHIFT)
    }

    /// The page containing this block.
    pub fn page(self) -> PageAddr {
        PageAddr(self.0 >> (PAGE_SHIFT - BLOCK_SHIFT))
    }
}

impl fmt::Debug for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Block({:#x})", self.0)
    }
}

impl Add<u64> for BlockAddr {
    type Output = BlockAddr;
    fn add(self, rhs: u64) -> BlockAddr {
        BlockAddr(self.0 + rhs)
    }
}

impl Sub<u64> for BlockAddr {
    type Output = BlockAddr;
    fn sub(self, rhs: u64) -> BlockAddr {
        BlockAddr(self.0 - rhs)
    }
}

/// A page number (byte address divided by [`PAGE_SIZE`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageAddr(pub u64);

impl PageAddr {
    /// The first byte address of this page.
    pub fn base(self) -> Addr {
        Addr(self.0 << PAGE_SHIFT)
    }

    /// The first block of this page.
    pub fn first_block(self) -> BlockAddr {
        BlockAddr(self.0 << (PAGE_SHIFT - BLOCK_SHIFT))
    }

    /// Number of cache blocks per page.
    pub fn blocks_per_page() -> u64 {
        PAGE_SIZE / BLOCK_SIZE
    }
}

impl fmt::Debug for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Page({:#x})", self.0)
    }
}

impl Add<u64> for PageAddr {
    type Output = PageAddr;
    fn add(self, rhs: u64) -> PageAddr {
        PageAddr(self.0 + rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_arithmetic_round_trips() {
        let a = Addr(0x12345);
        assert_eq!(a.block().base().0, 0x12340);
        assert_eq!(a.block_offset(), 5);
        assert_eq!(a.block().base() + a.block_offset(), a);
    }

    #[test]
    fn page_arithmetic_round_trips() {
        let a = Addr(0x1_2f83);
        assert_eq!(a.page().base().0, 0x1_2000);
        assert_eq!(a.page_offset(), 0xf83);
        assert_eq!(a.page().base() + a.page_offset(), a);
    }

    #[test]
    fn page_contains_its_blocks() {
        let p = PageAddr(7);
        let first = p.first_block();
        for i in 0..PageAddr::blocks_per_page() {
            assert_eq!((first + i).page(), p);
        }
        assert_ne!((first + PageAddr::blocks_per_page()).page(), p);
    }

    #[test]
    fn block_boundaries() {
        assert_eq!(Addr(63).block(), Addr(0).block());
        assert_eq!(Addr(64).block(), Addr(0).block() + 1);
        assert_eq!(Addr(64).block_offset(), 0);
    }

    #[test]
    fn addr_ordering_and_sub() {
        assert!(Addr(10) < Addr(20));
        assert_eq!(Addr(20) - Addr(10), 10);
    }

    #[test]
    fn checked_add_saturates_at_u64_max() {
        assert_eq!(Addr(u64::MAX).checked_add(1), None);
        assert_eq!(Addr(1).checked_add(2), Some(Addr(3)));
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(format!("{}", Addr(255)), "0xff");
        assert_eq!(format!("{:?}", BlockAddr(16)), "Block(0x10)");
    }
}
