//! The data payload of one cache block.

use crate::{WriteMask, BLOCK_SIZE};
use std::fmt;

/// The 64 data bytes of one cache block.
///
/// The simulator carries real data through the cache hierarchy so that tests
/// can verify WARDen's claim that unordered reconciliation of WARD regions
/// produces a correct memory image (paper §5.2).
///
/// # Example
///
/// ```
/// use warden_mem::{BlockData, WriteMask};
/// let mut shared = BlockData::zeroed();
/// let mut private = BlockData::zeroed();
/// private.bytes_mut()[3] = 0xAB;
/// let mut mask = WriteMask::empty();
/// mask.set_range(3, 1);
/// shared.merge_from(&private, mask);
/// assert_eq!(shared.bytes()[3], 0xAB);
/// assert_eq!(shared.bytes()[4], 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockData([u8; BLOCK_SIZE as usize]);

impl BlockData {
    /// An all-zero block.
    pub fn zeroed() -> BlockData {
        BlockData([0; BLOCK_SIZE as usize])
    }

    /// Construct from raw bytes.
    pub fn from_bytes(bytes: [u8; BLOCK_SIZE as usize]) -> BlockData {
        BlockData(bytes)
    }

    /// Borrow the data bytes.
    pub fn bytes(&self) -> &[u8; BLOCK_SIZE as usize] {
        &self.0
    }

    /// Mutably borrow the data bytes.
    pub fn bytes_mut(&mut self) -> &mut [u8; BLOCK_SIZE as usize] {
        &mut self.0
    }

    /// Copy `src` into this block at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset + src.len()` exceeds the block size.
    pub fn write(&mut self, offset: u64, src: &[u8]) {
        let offset = offset as usize;
        self.0[offset..offset + src.len()].copy_from_slice(src);
    }

    /// Read `dst.len()` bytes from this block at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset + dst.len()` exceeds the block size.
    pub fn read(&self, offset: u64, dst: &mut [u8]) {
        let offset = offset as usize;
        dst.copy_from_slice(&self.0[offset..offset + dst.len()]);
    }

    /// Overwrite the bytes selected by `mask` with the corresponding bytes of
    /// `other`, leaving unselected bytes untouched.
    ///
    /// This is the hardware merge step of WARDen reconciliation: each private
    /// copy's *written* sectors are folded into the shared-cache copy. For
    /// false sharing the masks are disjoint, so merging is order-independent;
    /// for true (WAW) sharing the last merge processed wins, which the WARD
    /// property declares acceptable.
    pub fn merge_from(&mut self, other: &BlockData, mask: WriteMask) {
        for off in mask.iter_offsets() {
            self.0[off as usize] = other.0[off as usize];
        }
    }
}

impl Default for BlockData {
    fn default() -> BlockData {
        BlockData::zeroed()
    }
}

impl fmt::Debug for BlockData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BlockData(")?;
        for b in &self.0[..8] {
            write!(f, "{b:02x}")?;
        }
        write!(f, "…)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trips() {
        let mut b = BlockData::zeroed();
        b.write(10, &[1, 2, 3]);
        let mut out = [0u8; 3];
        b.read(10, &mut out);
        assert_eq!(out, [1, 2, 3]);
    }

    #[test]
    fn merge_only_masked_bytes() {
        let mut dst = BlockData::from_bytes([0xEE; 64]);
        let mut src = BlockData::zeroed();
        src.write(0, &[9; 64]);
        let mut mask = WriteMask::empty();
        mask.set_range(32, 16);
        dst.merge_from(&src, mask);
        for i in 0..64 {
            let expected = if (32..48).contains(&i) { 9 } else { 0xEE };
            assert_eq!(dst.bytes()[i], expected, "byte {i}");
        }
    }

    #[test]
    fn disjoint_merges_commute() {
        // False-sharing reconciliation must be order-independent.
        let base = BlockData::zeroed();
        let mut a = BlockData::zeroed();
        a.write(0, &[1; 8]);
        let mut ma = WriteMask::empty();
        ma.set_range(0, 8);
        let mut b = BlockData::zeroed();
        b.write(8, &[2; 8]);
        let mut mb = WriteMask::empty();
        mb.set_range(8, 8);

        let mut ab = base;
        ab.merge_from(&a, ma);
        ab.merge_from(&b, mb);
        let mut ba = base;
        ba.merge_from(&b, mb);
        ba.merge_from(&a, ma);
        assert_eq!(ab, ba);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_write_panics() {
        BlockData::zeroed().write(60, &[0; 8]);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", BlockData::zeroed()).is_empty());
    }
}
