//! Flat, page-indexed map backing the simulator's hot lookups.
//!
//! Every demand access asks at least one page-keyed question — "is this
//! page resident?", "which region owns it?", "which blocks of it does the
//! directory track?". A `HashMap<PageAddr, _>` answers each in ~100ns of
//! SipHash and probing; a [`PageMap`] answers in one bounds check and one
//! array index, because real programs touch a *compact* range of pages
//! (the MPL runtime bump-allocates from a fixed heap base).
//!
//! The map keeps a dense `Vec<Option<T>>` over the span of pages seen so
//! far and transparently spills to a `HashMap` for outliers once the span
//! would exceed [`PageMap::MAX_DENSE_SPAN`] (fault plans deliberately plant
//! decoy regions far outside the program's range, so the spill path is
//! exercised, not theoretical). Growing the span migrates any spilled
//! entries that fall inside the new dense window, so a page lives in
//! exactly one of the two stores and the dense window is always preferred.
//!
//! Iteration order is *unspecified* (dense ascending, then spill in hash
//! order) — exactly like the `HashMap` this replaces; callers that need
//! canonical order (codecs, digests) sort, as they always did.

use crate::PageAddr;
use std::collections::HashMap;

/// Headroom added below the span when it grows downward, so a handful of
/// pages just under the heap base don't each pay a O(span) prepend.
const PREPEND_SLACK: u64 = 64;

/// A page-indexed map: dense array over the observed page span, hash-map
/// spill for far outliers.
///
/// # Example
///
/// ```
/// use warden_mem::{PageAddr, PageMap};
/// let mut m: PageMap<u64> = PageMap::new();
/// m.insert(PageAddr(7), 70);
/// assert_eq!(m.get(PageAddr(7)), Some(&70));
/// assert_eq!(m.get(PageAddr(8)), None);
/// assert_eq!(m.remove(PageAddr(7)), Some(70));
/// assert!(m.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct PageMap<T> {
    /// Page number of `slots[0]` (meaningless while `slots` is empty).
    base: u64,
    /// The dense window; `None` slots are absent pages inside the span.
    slots: Vec<Option<T>>,
    /// Number of `Some` slots, so `len` is O(1).
    dense_len: usize,
    /// Entries whose page is too far from the window to store densely.
    spill: HashMap<u64, T>,
}

impl<T> Default for PageMap<T> {
    fn default() -> PageMap<T> {
        PageMap::new()
    }
}

impl<T> PageMap<T> {
    /// Widest page span (in pages) the dense window may cover — 8 GiB of
    /// address space. Pages outside it go to the spill map.
    pub const MAX_DENSE_SPAN: u64 = 1 << 21;

    /// An empty map.
    pub fn new() -> PageMap<T> {
        PageMap {
            base: 0,
            slots: Vec::new(),
            dense_len: 0,
            spill: HashMap::new(),
        }
    }

    /// Number of mapped pages.
    pub fn len(&self) -> usize {
        self.dense_len + self.spill.len()
    }

    /// Whether no page is mapped.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn dense_idx(&self, page: u64) -> Option<usize> {
        let off = page.wrapping_sub(self.base);
        if off < self.slots.len() as u64 {
            Some(off as usize)
        } else {
            None
        }
    }

    /// The value mapped at `page`.
    #[inline]
    pub fn get(&self, page: PageAddr) -> Option<&T> {
        match self.dense_idx(page.0) {
            Some(i) => self.slots[i].as_ref(),
            None if self.spill.is_empty() => None,
            None => self.spill.get(&page.0),
        }
    }

    /// Mutable access to the value mapped at `page`.
    #[inline]
    pub fn get_mut(&mut self, page: PageAddr) -> Option<&mut T> {
        match self.dense_idx(page.0) {
            Some(i) => self.slots[i].as_mut(),
            None if self.spill.is_empty() => None,
            None => self.spill.get_mut(&page.0),
        }
    }

    /// Whether `page` is mapped.
    #[inline]
    pub fn contains(&self, page: PageAddr) -> bool {
        self.get(page).is_some()
    }

    /// Map `page` to `v`, returning the previous value if any.
    pub fn insert(&mut self, page: PageAddr, v: T) -> Option<T> {
        match self.ensure_slot(page.0) {
            Some(i) => {
                let old = self.slots[i].replace(v);
                if old.is_none() {
                    self.dense_len += 1;
                }
                old
            }
            None => self.spill.insert(page.0, v),
        }
    }

    /// The value at `page`, inserting `make()` first if absent.
    pub fn or_insert_with(&mut self, page: PageAddr, make: impl FnOnce() -> T) -> &mut T {
        match self.ensure_slot(page.0) {
            Some(i) => {
                if self.slots[i].is_none() {
                    self.slots[i] = Some(make());
                    self.dense_len += 1;
                }
                self.slots[i].as_mut().expect("slot just filled")
            }
            None => self.spill.entry(page.0).or_insert_with(make),
        }
    }

    /// Unmap `page`, returning its value. The dense window never shrinks —
    /// span is monotone over a run, which keeps removal O(1).
    pub fn remove(&mut self, page: PageAddr) -> Option<T> {
        match self.dense_idx(page.0) {
            Some(i) => {
                let old = self.slots[i].take();
                if old.is_some() {
                    self.dense_len -= 1;
                }
                old
            }
            None => self.spill.remove(&page.0),
        }
    }

    /// Remove every entry.
    pub fn clear(&mut self) {
        self.base = 0;
        self.slots.clear();
        self.dense_len = 0;
        self.spill.clear();
    }

    /// Visit every entry. Order is unspecified (dense span ascending, then
    /// spilled outliers in hash order); callers needing canonical order
    /// sort, as with the hash map this replaces.
    pub fn iter(&self) -> impl Iterator<Item = (PageAddr, &T)> {
        let base = self.base;
        self.slots
            .iter()
            .enumerate()
            .filter_map(move |(i, s)| s.as_ref().map(|v| (PageAddr(base + i as u64), v)))
            .chain(self.spill.iter().map(|(&p, v)| (PageAddr(p), v)))
    }

    /// Index of the slot for `page`, growing the dense window if the page
    /// fits within [`Self::MAX_DENSE_SPAN`]; `None` means "use the spill".
    fn ensure_slot(&mut self, page: u64) -> Option<usize> {
        if self.slots.is_empty() && self.spill.is_empty() {
            self.base = page;
            self.slots.push(None);
            return Some(0);
        }
        if self.slots.is_empty() {
            // Spill-only map (possible after decode): anchor the window at
            // this page; spilled neighbours migrate in as the span grows.
            self.base = page;
            self.slots.push(None);
            self.migrate_spill();
            return self.dense_idx(page);
        }
        let len = self.slots.len() as u64;
        if page >= self.base {
            let off = page - self.base;
            if off < len {
                return Some(off as usize);
            }
            let needed = off + 1;
            if needed > Self::MAX_DENSE_SPAN {
                return None;
            }
            self.slots.resize_with(needed as usize, || None);
            self.migrate_spill();
            return self.dense_idx(page);
        }
        // Below the window: prepend, with slack so a run of slightly-lower
        // pages doesn't repeat the O(span) shift.
        let mut new_base = page.saturating_sub(PREPEND_SLACK);
        if len + (self.base - new_base) > Self::MAX_DENSE_SPAN {
            new_base = page;
        }
        let shift = self.base - new_base;
        if len + shift > Self::MAX_DENSE_SPAN {
            return None;
        }
        let mut grown: Vec<Option<T>> = Vec::with_capacity((len + shift) as usize);
        grown.resize_with(shift as usize, || None);
        grown.append(&mut self.slots);
        self.slots = grown;
        self.base = new_base;
        self.migrate_spill();
        self.dense_idx(page)
    }

    /// Pull spilled entries that now fall inside the dense window.
    fn migrate_spill(&mut self) {
        if self.spill.is_empty() {
            return;
        }
        let (base, len) = (self.base, self.slots.len() as u64);
        let inside: Vec<u64> = self
            .spill
            .keys()
            .copied()
            .filter(|&p| p.wrapping_sub(base) < len)
            .collect();
        for p in inside {
            let v = self.spill.remove(&p).expect("key just listed");
            let i = (p - base) as usize;
            debug_assert!(self.slots[i].is_none(), "page in both stores");
            self.slots[i] = Some(v);
            self.dense_len += 1;
        }
    }
}

impl<T: PartialEq> PartialEq for PageMap<T> {
    /// Content equality, independent of window placement or spill split.
    fn eq(&self, other: &PageMap<T>) -> bool {
        self.len() == other.len() && self.iter().all(|(p, v)| other.get(p) == Some(v))
    }
}

impl<T: Eq> Eq for PageMap<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m: PageMap<u32> = PageMap::new();
        assert!(m.is_empty() && !m.contains(PageAddr(3)));
        assert_eq!(m.insert(PageAddr(3), 30), None);
        assert_eq!(m.insert(PageAddr(3), 31), Some(30));
        assert_eq!(m.get(PageAddr(3)), Some(&31));
        *m.get_mut(PageAddr(3)).unwrap() += 1;
        assert_eq!(m.remove(PageAddr(3)), Some(32));
        assert_eq!(m.remove(PageAddr(3)), None);
        assert!(m.is_empty());
    }

    #[test]
    fn window_grows_both_directions() {
        let mut m: PageMap<u64> = PageMap::new();
        m.insert(PageAddr(1000), 1);
        m.insert(PageAddr(1500), 2); // grow up
        m.insert(PageAddr(900), 3); // grow down (slack path)
        m.insert(PageAddr(899), 4); // inside the slack, no shift
        assert_eq!(m.len(), 4);
        for (p, v) in [(1000, 1), (1500, 2), (900, 3), (899, 4)] {
            assert_eq!(m.get(PageAddr(p)), Some(&v), "page {p}");
        }
    }

    #[test]
    fn far_pages_spill_and_migrate_back() {
        let mut m: PageMap<u64> = PageMap::new();
        m.insert(PageAddr(0), 1);
        let far = PageMap::<u64>::MAX_DENSE_SPAN + 10;
        m.insert(PageAddr(far), 2); // outside the span: spilled
        assert_eq!(m.get(PageAddr(far)), Some(&2));
        assert_eq!(m.len(), 2);
        assert_eq!(m.remove(PageAddr(far)), Some(2));
        // A spilled page within reach migrates into the window on growth.
        m.insert(PageAddr(PageMap::<u64>::MAX_DENSE_SPAN + 5), 3);
        m.insert(PageAddr(PageMap::<u64>::MAX_DENSE_SPAN - 1), 4);
        assert_eq!(
            m.get(PageAddr(PageMap::<u64>::MAX_DENSE_SPAN + 5)),
            Some(&3)
        );
        assert_eq!(
            m.get(PageAddr(PageMap::<u64>::MAX_DENSE_SPAN - 1)),
            Some(&4)
        );
    }

    #[test]
    fn or_insert_with_creates_once() {
        let mut m: PageMap<Vec<u8>> = PageMap::new();
        m.or_insert_with(PageAddr(5), || vec![1]).push(2);
        m.or_insert_with(PageAddr(5), || vec![9]).push(3);
        assert_eq!(m.get(PageAddr(5)), Some(&vec![1, 2, 3]));
    }

    #[test]
    fn iter_visits_dense_and_spill() {
        let mut m: PageMap<u64> = PageMap::new();
        m.insert(PageAddr(2), 20);
        m.insert(PageAddr(4), 40);
        m.insert(PageAddr(3 * PageMap::<u64>::MAX_DENSE_SPAN), 99);
        let mut got: Vec<(u64, u64)> = m.iter().map(|(p, &v)| (p.0, v)).collect();
        got.sort_unstable();
        assert_eq!(
            got,
            vec![(2, 20), (4, 40), (3 * PageMap::<u64>::MAX_DENSE_SPAN, 99)]
        );
    }

    #[test]
    fn equality_ignores_window_placement() {
        let mut a: PageMap<u64> = PageMap::new();
        a.insert(PageAddr(100), 1);
        a.insert(PageAddr(5), 2);
        let mut b: PageMap<u64> = PageMap::new();
        b.insert(PageAddr(5), 2);
        b.insert(PageAddr(100), 1);
        assert_eq!(a, b);
        b.insert(PageAddr(6), 3);
        assert_ne!(a, b);
        assert_ne!(a, PageMap::new());
    }

    #[test]
    fn clear_resets_everything() {
        let mut m: PageMap<u64> = PageMap::new();
        m.insert(PageAddr(7), 1);
        m.insert(PageAddr(2 * PageMap::<u64>::MAX_DENSE_SPAN), 2);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(PageAddr(7)), None);
        m.insert(PageAddr(1), 3);
        assert_eq!(m.len(), 1);
    }
}
