//! Cache geometry: size / associativity / set indexing.

use crate::{BlockAddr, BLOCK_SIZE};
use std::fmt;

/// Shape of one cache: capacity, associativity and the derived set count.
///
/// # Example
///
/// ```
/// use warden_mem::CacheGeometry;
/// // The paper's L1: 32 KiB, 8-way, 64 B blocks => 64 sets.
/// let l1 = CacheGeometry::new(32 * 1024, 8);
/// assert_eq!(l1.num_sets(), 64);
/// assert_eq!(l1.num_blocks(), 512);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    size_bytes: u64,
    associativity: u32,
    num_sets: u64,
}

impl CacheGeometry {
    /// Create a geometry for a cache of `size_bytes` with `associativity`
    /// ways and 64-byte blocks.
    ///
    /// # Panics
    ///
    /// Panics if the parameters do not describe a valid cache: zero sizes,
    /// a size not divisible into whole sets, or a non-power-of-two set count
    /// (required for mask-based set indexing).
    pub fn new(size_bytes: u64, associativity: u32) -> CacheGeometry {
        assert!(size_bytes > 0, "cache size must be positive");
        assert!(associativity > 0, "associativity must be positive");
        let blocks = size_bytes / BLOCK_SIZE;
        assert_eq!(
            blocks * BLOCK_SIZE,
            size_bytes,
            "cache size must be a multiple of the block size"
        );
        assert_eq!(
            blocks % associativity as u64,
            0,
            "cache blocks must divide evenly into ways"
        );
        let num_sets = blocks / associativity as u64;
        CacheGeometry {
            size_bytes,
            associativity,
            num_sets,
        }
    }

    /// Total capacity in bytes.
    pub fn size_bytes(self) -> u64 {
        self.size_bytes
    }

    /// Number of ways per set.
    pub fn associativity(self) -> u32 {
        self.associativity
    }

    /// Number of sets.
    pub fn num_sets(self) -> u64 {
        self.num_sets
    }

    /// Total number of blocks the cache can hold.
    pub fn num_blocks(self) -> u64 {
        self.size_bytes / BLOCK_SIZE
    }

    /// The set index for a block.
    ///
    /// Power-of-two set counts index by mask; other counts (e.g. the paper's
    /// 20-way L3, which yields 24576 sets) index by modulo, as NUCA slices do.
    pub fn set_of(self, block: BlockAddr) -> u64 {
        if self.num_sets.is_power_of_two() {
            block.0 & (self.num_sets - 1)
        } else {
            block.0 % self.num_sets
        }
    }
}

impl fmt::Debug for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CacheGeometry({} KiB, {}-way, {} sets)",
            self.size_bytes / 1024,
            self.associativity,
            self.num_sets
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_l2_geometry() {
        // 256 KiB, 8-way => 512 sets.
        let l2 = CacheGeometry::new(256 * 1024, 8);
        assert_eq!(l2.num_sets(), 512);
        assert_eq!(l2.num_blocks(), 4096);
    }

    #[test]
    fn set_indexing_wraps() {
        let g = CacheGeometry::new(8 * 1024, 2); // 64 sets
        assert_eq!(g.set_of(BlockAddr(0)), 0);
        assert_eq!(g.set_of(BlockAddr(64)), 0);
        assert_eq!(g.set_of(BlockAddr(65)), 1);
    }

    #[test]
    fn non_power_of_two_sets_use_modulo() {
        // The paper's L3 slice shape: 20-way gives a non-power-of-two set
        // count; indexing must still land within range.
        let g = CacheGeometry::new(30 * 1024, 20); // 24 sets
        assert_eq!(g.num_sets(), 24);
        assert_eq!(g.set_of(BlockAddr(25)), 1);
        for b in 0..1000 {
            assert!(g.set_of(BlockAddr(b)) < g.num_sets());
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_rejected() {
        CacheGeometry::new(0, 8);
    }

    #[test]
    fn fully_associative_single_set() {
        let g = CacheGeometry::new(64 * 16, 16);
        assert_eq!(g.num_sets(), 1);
        assert_eq!(g.set_of(BlockAddr(12345)), 0);
    }
}
