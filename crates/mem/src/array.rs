//! Set-associative cache arrays with LRU replacement.

use crate::codec::{CodecError, Decoder, Encoder};
use crate::{BlockAddr, CacheGeometry};
use std::fmt;

/// One resident cache line: its block number, a payload (coherence state,
/// data, write mask — whatever the protocol layer attaches), and an LRU stamp.
#[derive(Clone, Debug)]
struct Line<T> {
    block: BlockAddr,
    payload: T,
    lru: u64,
}

/// A block evicted by [`CacheArray::insert`], handed back to the caller so
/// the protocol layer can write it back or notify the directory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Evicted<T> {
    /// Block number of the victim line.
    pub block: BlockAddr,
    /// The victim's payload.
    pub payload: T,
}

/// A successful mutable lookup, exposing the payload.
pub struct LookupMut<'a, T> {
    payload: &'a mut T,
}

impl<'a, T> LookupMut<'a, T> {
    /// The payload of the found line.
    pub fn payload(&mut self) -> &mut T {
        self.payload
    }
}

/// A set-associative, LRU-replaced cache array with payloads of type `T`.
///
/// The array itself is protocol-agnostic: the coherence layer stores MESI/W
/// state, block data and write masks in `T`. Evictions are returned, never
/// silently dropped, so the protocol can model write-backs.
///
/// # Example
///
/// ```
/// use warden_mem::{BlockAddr, CacheArray, CacheGeometry};
/// let mut cache: CacheArray<u32> = CacheArray::new(CacheGeometry::new(1024, 2));
/// assert!(cache.insert(BlockAddr(1), 11).is_none());
/// assert_eq!(cache.get(BlockAddr(1)), Some(&11));
/// cache.invalidate(BlockAddr(1));
/// assert_eq!(cache.get(BlockAddr(1)), None);
/// ```
#[derive(Clone)]
pub struct CacheArray<T> {
    geometry: CacheGeometry,
    sets: Vec<Vec<Line<T>>>,
    tick: u64,
    len: usize,
}

impl<T> CacheArray<T> {
    /// Create an empty array with the given geometry.
    pub fn new(geometry: CacheGeometry) -> CacheArray<T> {
        let sets = (0..geometry.num_sets()).map(|_| Vec::new()).collect();
        CacheArray {
            geometry,
            sets,
            tick: 0,
            len: 0,
        }
    }

    /// The geometry this array was created with.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn bump(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Look up a block without touching LRU state (a "probe", as a directory
    /// snoop would do).
    pub fn peek(&self, block: BlockAddr) -> Option<&T> {
        let set = &self.sets[self.geometry.set_of(block) as usize];
        set.iter().find(|l| l.block == block).map(|l| &l.payload)
    }

    /// Look up a block, updating LRU state (a demand access).
    pub fn get(&mut self, block: BlockAddr) -> Option<&T> {
        let tick = self.bump();
        let set = &mut self.sets[self.geometry.set_of(block) as usize];
        let line = set.iter_mut().find(|l| l.block == block)?;
        line.lru = tick;
        Some(&line.payload)
    }

    /// Look up a block mutably, updating LRU state.
    pub fn get_mut(&mut self, block: BlockAddr) -> Option<&mut T> {
        let tick = self.bump();
        let set = &mut self.sets[self.geometry.set_of(block) as usize];
        let line = set.iter_mut().find(|l| l.block == block)?;
        line.lru = tick;
        Some(&mut line.payload)
    }

    /// Look up a block mutably *without* updating LRU state (for snoops and
    /// reconciliation scans that should not perturb replacement).
    pub fn peek_mut(&mut self, block: BlockAddr) -> Option<&mut T> {
        let set = &mut self.sets[self.geometry.set_of(block) as usize];
        let line = set.iter_mut().find(|l| l.block == block)?;
        Some(&mut line.payload)
    }

    /// Insert (or replace) a block's payload. If the set is full, the LRU
    /// victim is evicted and returned.
    ///
    /// Replacing an existing block never evicts and returns `None`.
    pub fn insert(&mut self, block: BlockAddr, payload: T) -> Option<Evicted<T>> {
        let tick = self.bump();
        let ways = self.geometry.associativity() as usize;
        let set = &mut self.sets[self.geometry.set_of(block) as usize];
        if let Some(line) = set.iter_mut().find(|l| l.block == block) {
            line.payload = payload;
            line.lru = tick;
            return None;
        }
        let mut evicted = None;
        if set.len() == ways {
            let (victim_idx, _) = set
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.lru)
                .expect("full set is non-empty");
            let victim = set.swap_remove(victim_idx);
            evicted = Some(Evicted {
                block: victim.block,
                payload: victim.payload,
            });
            self.len -= 1;
        }
        set.push(Line {
            block,
            payload,
            lru: tick,
        });
        self.len += 1;
        evicted
    }

    /// Remove a block, returning its payload if it was resident.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<T> {
        let set = &mut self.sets[self.geometry.set_of(block) as usize];
        let idx = set.iter().position(|l| l.block == block)?;
        self.len -= 1;
        Some(set.swap_remove(idx).payload)
    }

    /// Iterate over all resident lines (block, payload).
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, &T)> {
        self.sets
            .iter()
            .flat_map(|s| s.iter().map(|l| (l.block, &l.payload)))
    }

    /// Remove every line for which `pred` returns true, invoking `on_removed`
    /// for each (used for WARD-region flushes during reconciliation).
    pub fn drain_matching(
        &mut self,
        mut pred: impl FnMut(BlockAddr, &T) -> bool,
        mut on_removed: impl FnMut(BlockAddr, T),
    ) {
        for set in &mut self.sets {
            let mut i = 0;
            while i < set.len() {
                if pred(set[i].block, &set[i].payload) {
                    let line = set.swap_remove(i);
                    self.len -= 1;
                    on_removed(line.block, line.payload);
                } else {
                    i += 1;
                }
            }
        }
    }

    /// Remove all lines, invoking `on_removed` for each (a full cache flush).
    pub fn drain_all(&mut self, mut on_removed: impl FnMut(BlockAddr, T)) {
        for set in &mut self.sets {
            for line in set.drain(..) {
                on_removed(line.block, line.payload);
            }
        }
        self.len = 0;
    }

    /// Mutable lookup wrapped in [`LookupMut`], updating LRU state.
    pub fn lookup_mut(&mut self, block: BlockAddr) -> Option<LookupMut<'_, T>> {
        self.get_mut(block).map(|payload| LookupMut { payload })
    }

    /// Serialize the array's complete replacement state: the LRU tick and,
    /// per set, every line *in its exact storage order* with its LRU stamp.
    /// Order matters for bit-identical resume: [`Self::insert`] evicts with
    /// `swap_remove`, so within-set position influences future victim
    /// selection whenever LRU stamps tie.
    ///
    /// Payloads are emitted through `put` so the protocol layer controls
    /// their encoding.
    pub fn encode_with(&self, enc: &mut Encoder, mut put: impl FnMut(&mut Encoder, &T)) {
        enc.put_u64(self.tick);
        enc.put_usize(self.sets.len());
        for set in &self.sets {
            enc.put_usize(set.len());
            for line in set {
                enc.put_u64(line.block.0);
                enc.put_u64(line.lru);
                put(enc, &line.payload);
            }
        }
    }

    /// Decode an array serialized by [`Self::encode_with`] into the given
    /// geometry, restoring tick, per-set line order and LRU stamps exactly.
    pub fn decode_with(
        geometry: CacheGeometry,
        dec: &mut Decoder<'_>,
        mut take: impl FnMut(&mut Decoder<'_>) -> Result<T, CodecError>,
    ) -> Result<CacheArray<T>, CodecError> {
        let tick = dec.take_u64()?;
        let num_sets = dec.take_usize()?;
        if num_sets != geometry.num_sets() as usize {
            return Err(CodecError::Invalid {
                what: "cache array",
                detail: format!(
                    "snapshot has {num_sets} sets, geometry expects {}",
                    geometry.num_sets()
                ),
            });
        }
        let ways = geometry.associativity() as usize;
        let mut sets = Vec::with_capacity(num_sets);
        let mut len = 0usize;
        for set_idx in 0..num_sets {
            let n = dec.take_count(16)?;
            if n > ways {
                return Err(CodecError::Invalid {
                    what: "cache set",
                    detail: format!("set {set_idx} holds {n} lines, associativity is {ways}"),
                });
            }
            let mut set = Vec::with_capacity(n);
            for _ in 0..n {
                let block = BlockAddr(dec.take_u64()?);
                if geometry.set_of(block) as usize != set_idx {
                    return Err(CodecError::Invalid {
                        what: "cache line",
                        detail: format!("block {} does not map to set {set_idx}", block.0),
                    });
                }
                if set.iter().any(|l: &Line<T>| l.block == block) {
                    return Err(CodecError::Invalid {
                        what: "cache line",
                        detail: format!("block {} duplicated within set {set_idx}", block.0),
                    });
                }
                let lru = dec.take_u64()?;
                let payload = take(dec)?;
                set.push(Line {
                    block,
                    payload,
                    lru,
                });
            }
            len += set.len();
            sets.push(set);
        }
        Ok(CacheArray {
            geometry,
            sets,
            tick,
            len,
        })
    }
}

impl<T: fmt::Debug> fmt::Debug for CacheArray<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CacheArray({:?}, {} resident)",
            self.geometry,
            self.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CacheGeometry;

    fn small() -> CacheArray<u32> {
        // 2-way, 2 sets.
        CacheArray::new(CacheGeometry::new(256, 2))
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut c = small();
        assert!(c.insert(BlockAddr(0), 7).is_none());
        assert_eq!(c.get(BlockAddr(0)), Some(&7));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn replace_updates_payload_without_eviction() {
        let mut c = small();
        c.insert(BlockAddr(0), 1);
        assert!(c.insert(BlockAddr(0), 2).is_none());
        assert_eq!(c.get(BlockAddr(0)), Some(&2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_victim_is_least_recently_used() {
        let mut c = small();
        // Blocks 0 and 2 both map to set 0 (2 sets).
        c.insert(BlockAddr(0), 10);
        c.insert(BlockAddr(2), 20);
        // Touch 0 so 2 becomes LRU.
        c.get(BlockAddr(0));
        let ev = c.insert(BlockAddr(4), 40).expect("set was full");
        assert_eq!(ev.block, BlockAddr(2));
        assert_eq!(ev.payload, 20);
        assert!(c.peek(BlockAddr(0)).is_some());
        assert!(c.peek(BlockAddr(4)).is_some());
    }

    #[test]
    fn peek_does_not_touch_lru() {
        let mut c = small();
        c.insert(BlockAddr(0), 10);
        c.insert(BlockAddr(2), 20);
        // Peek at 0: should NOT protect it.
        assert_eq!(c.peek(BlockAddr(0)), Some(&10));
        let ev = c.insert(BlockAddr(4), 40).expect("eviction");
        assert_eq!(ev.block, BlockAddr(0));
    }

    #[test]
    fn invalidate_removes() {
        let mut c = small();
        c.insert(BlockAddr(1), 5);
        assert_eq!(c.invalidate(BlockAddr(1)), Some(5));
        assert_eq!(c.invalidate(BlockAddr(1)), None);
        assert!(c.is_empty());
    }

    #[test]
    fn drain_matching_removes_only_matches() {
        let mut c = small();
        c.insert(BlockAddr(0), 1);
        c.insert(BlockAddr(1), 2);
        c.insert(BlockAddr(2), 3);
        let mut removed = Vec::new();
        c.drain_matching(|_, p| *p >= 2, |b, p| removed.push((b, p)));
        removed.sort();
        assert_eq!(removed, vec![(BlockAddr(1), 2), (BlockAddr(2), 3)]);
        assert_eq!(c.len(), 1);
        assert!(c.peek(BlockAddr(0)).is_some());
    }

    #[test]
    fn drain_all_empties() {
        let mut c = small();
        c.insert(BlockAddr(0), 1);
        c.insert(BlockAddr(1), 2);
        let mut n = 0;
        c.drain_all(|_, _| n += 1);
        assert_eq!(n, 2);
        assert!(c.is_empty());
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = small();
        // Blocks 0,2 -> set 0; blocks 1,3 -> set 1.
        c.insert(BlockAddr(0), 0);
        c.insert(BlockAddr(2), 2);
        assert!(c.insert(BlockAddr(1), 1).is_none());
        assert!(c.insert(BlockAddr(3), 3).is_none());
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut c = small();
        c.insert(BlockAddr(0), 1);
        *c.get_mut(BlockAddr(0)).unwrap() += 10;
        assert_eq!(c.peek(BlockAddr(0)), Some(&11));
    }

    #[test]
    fn codec_roundtrip_preserves_order_lru_and_tick() {
        let mut c = small();
        c.insert(BlockAddr(0), 10);
        c.insert(BlockAddr(2), 20);
        c.get(BlockAddr(0));
        c.insert(BlockAddr(4), 40); // evicts via swap_remove, perturbing order
        c.insert(BlockAddr(1), 11);

        let mut enc = crate::codec::Encoder::new();
        c.encode_with(&mut enc, |e, p| e.put_u32(*p));
        let bytes = enc.into_bytes();
        let mut dec = crate::codec::Decoder::new(&bytes);
        let mut d: CacheArray<u32> =
            CacheArray::decode_with(c.geometry(), &mut dec, |d| d.take_u32()).unwrap();
        dec.finish().unwrap();

        // Behavioral equivalence: the same future insert evicts the same victim.
        let ev_c = c.insert(BlockAddr(6), 60).expect("eviction");
        let ev_d = d.insert(BlockAddr(6), 60).expect("eviction");
        assert_eq!(ev_c.block, ev_d.block);
        assert_eq!(ev_c.payload, ev_d.payload);
        assert_eq!(c.len(), d.len());
    }

    #[test]
    fn codec_rejects_overfull_set_and_wrong_geometry() {
        let mut c = small();
        c.insert(BlockAddr(0), 1);
        let mut enc = crate::codec::Encoder::new();
        c.encode_with(&mut enc, |e, p| e.put_u32(*p));
        let bytes = enc.into_bytes();
        // Decoding into a different geometry must fail.
        let mut dec = crate::codec::Decoder::new(&bytes);
        let wrong = CacheGeometry::new(512, 2);
        assert!(CacheArray::<u32>::decode_with(wrong, &mut dec, |d| d.take_u32()).is_err());
    }

    #[test]
    fn iter_visits_all_lines() {
        let mut c = small();
        c.insert(BlockAddr(0), 1);
        c.insert(BlockAddr(1), 2);
        let mut blocks: Vec<_> = c.iter().map(|(b, _)| b.0).collect();
        blocks.sort();
        assert_eq!(blocks, vec![0, 1]);
    }
}
