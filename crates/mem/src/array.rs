//! Set-associative cache arrays with LRU replacement.
//!
//! Tags and payloads are stored separately (a struct-of-arrays layout): the
//! per-set tag scan — the operation every lookup performs — walks a dense
//! `(block, lru)` array of 16 bytes per way, while the fat payloads
//! (coherence state, block data, write masks) live in parallel per-set
//! vectors touched only on a hit. With ~100-byte payloads this cuts the
//! memory traffic of a 20-way scan by an order of magnitude, which is where
//! the simulator's hot loop spends its time.

use crate::codec::{CodecError, Decoder, Encoder};
use crate::{BlockAddr, CacheGeometry};
use std::fmt;

/// A block evicted by [`CacheArray::insert`], handed back to the caller so
/// the protocol layer can write it back or notify the directory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Evicted<T> {
    /// Block number of the victim line.
    pub block: BlockAddr,
    /// The victim's payload.
    pub payload: T,
}

/// An opaque handle to a resident line, returned by [`CacheArray::locate`]
/// and [`CacheArray::get_slot`]. Dereference with [`CacheArray::at`] /
/// [`CacheArray::at_mut`].
///
/// A slot stays valid until the array's membership next changes (any
/// `insert`, `invalidate` or drain); payload mutation through `at_mut` or
/// the borrow-based lookups does not disturb it. The protocol layer relies
/// on this to look a block up once per directory transaction instead of
/// re-scanning the set for every read and write of the same line.
#[derive(Clone, Copy, Debug)]
pub struct Slot {
    set: u32,
    way: u32,
}

/// A successful mutable lookup, exposing the payload.
pub struct LookupMut<'a, T> {
    payload: &'a mut T,
}

impl<'a, T> LookupMut<'a, T> {
    /// The payload of the found line.
    pub fn payload(&mut self) -> &mut T {
        self.payload
    }
}

/// A set-associative, LRU-replaced cache array with payloads of type `T`.
///
/// The array itself is protocol-agnostic: the coherence layer stores MESI/W
/// state, block data and write masks in `T`. Evictions are returned, never
/// silently dropped, so the protocol can model write-backs.
///
/// # Example
///
/// ```
/// use warden_mem::{BlockAddr, CacheArray, CacheGeometry};
/// let mut cache: CacheArray<u32> = CacheArray::new(CacheGeometry::new(1024, 2));
/// assert!(cache.insert(BlockAddr(1), 11).is_none());
/// assert_eq!(cache.get(BlockAddr(1)), Some(&11));
/// cache.invalidate(BlockAddr(1));
/// assert_eq!(cache.get(BlockAddr(1)), None);
/// ```
#[derive(Clone)]
pub struct CacheArray<T> {
    geometry: CacheGeometry,
    assoc: usize,
    /// Raw block number per way slot, `assoc` slots per set; only the first
    /// `fill[set]` slots of a set are live. Within-set slot order matches
    /// the order lines were stored (inserts append, removals swap the last
    /// live slot in), exactly like the former `Vec<Line>` storage — victim
    /// selection on LRU ties depends on it. Kept as bare `u64` (not
    /// `BlockAddr`) so construction takes the `alloc_zeroed` fast path:
    /// a paper-scale LLC slice is tens of megabytes of slots, and a memset
    /// at that size costs more than a small kernel's entire replay.
    blocks: Vec<u64>,
    /// LRU stamp per way slot, parallel to `blocks`; read only on a hit or
    /// during victim selection, so tag scans stay within `blocks`.
    lru: Vec<u64>,
    /// Live line count per set.
    fill: Vec<u32>,
    /// `payloads[set][way]`, same within-set order as `tags`.
    payloads: Vec<Vec<T>>,
    tick: u64,
    len: usize,
}

impl<T> CacheArray<T> {
    /// Create an empty array with the given geometry.
    pub fn new(geometry: CacheGeometry) -> CacheArray<T> {
        let num_sets = geometry.num_sets() as usize;
        let assoc = geometry.associativity() as usize;
        CacheArray {
            geometry,
            assoc,
            blocks: vec![0; num_sets * assoc],
            lru: vec![0; num_sets * assoc],
            fill: vec![0; num_sets],
            payloads: (0..num_sets).map(|_| Vec::new()).collect(),
            tick: 0,
            len: 0,
        }
    }

    /// The geometry this array was created with.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn bump(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// The way index of `block` within its set, if resident.
    #[inline]
    fn find(&self, set: usize, block: BlockAddr) -> Option<usize> {
        let base = set * self.assoc;
        let n = self.fill[set] as usize;
        self.blocks[base..base + n]
            .iter()
            .position(|&b| b == block.0)
    }

    /// Look up a block without touching LRU state (a "probe", as a directory
    /// snoop would do).
    pub fn peek(&self, block: BlockAddr) -> Option<&T> {
        let set = self.geometry.set_of(block) as usize;
        let way = self.find(set, block)?;
        Some(&self.payloads[set][way])
    }

    /// Look up a block, updating LRU state (a demand access).
    pub fn get(&mut self, block: BlockAddr) -> Option<&T> {
        let tick = self.bump();
        let set = self.geometry.set_of(block) as usize;
        let way = self.find(set, block)?;
        self.lru[set * self.assoc + way] = tick;
        Some(&self.payloads[set][way])
    }

    /// Look up a block mutably, updating LRU state.
    pub fn get_mut(&mut self, block: BlockAddr) -> Option<&mut T> {
        let tick = self.bump();
        let set = self.geometry.set_of(block) as usize;
        let way = self.find(set, block)?;
        self.lru[set * self.assoc + way] = tick;
        Some(&mut self.payloads[set][way])
    }

    /// Look up a block mutably *without* updating LRU state (for snoops and
    /// reconciliation scans that should not perturb replacement).
    pub fn peek_mut(&mut self, block: BlockAddr) -> Option<&mut T> {
        let set = self.geometry.set_of(block) as usize;
        let way = self.find(set, block)?;
        Some(&mut self.payloads[set][way])
    }

    /// Locate a resident block without touching LRU state, returning a
    /// [`Slot`] handle for repeated O(1) access to the same line.
    #[inline]
    pub fn locate(&self, block: BlockAddr) -> Option<Slot> {
        let set = self.geometry.set_of(block) as usize;
        let way = self.find(set, block)?;
        Some(Slot {
            set: set as u32,
            way: way as u32,
        })
    }

    /// Locate a resident block, updating LRU state (a demand access), and
    /// return its [`Slot`]. Equivalent to [`Self::get`] plus [`Self::locate`]
    /// in one scan.
    #[inline]
    pub fn get_slot(&mut self, block: BlockAddr) -> Option<Slot> {
        let tick = self.bump();
        let set = self.geometry.set_of(block) as usize;
        let way = self.find(set, block)?;
        self.lru[set * self.assoc + way] = tick;
        Some(Slot {
            set: set as u32,
            way: way as u32,
        })
    }

    /// Mark `slot` as most-recently used, exactly as a [`Self::get`] on its
    /// block would (the tick advances once). Lets a caller that already
    /// located a line promote it without a second set scan.
    #[inline]
    pub fn touch(&mut self, slot: Slot) {
        let tick = self.bump();
        self.lru[slot.set as usize * self.assoc + slot.way as usize] = tick;
    }

    /// The payload at `slot` (no LRU effect).
    ///
    /// # Panics
    ///
    /// Panics if the slot no longer names a live line (its set's membership
    /// changed since [`Self::locate`]).
    #[inline]
    pub fn at(&self, slot: Slot) -> &T {
        &self.payloads[slot.set as usize][slot.way as usize]
    }

    /// The payload at `slot`, mutably (no LRU effect).
    ///
    /// # Panics
    ///
    /// Panics if the slot no longer names a live line (its set's membership
    /// changed since [`Self::locate`]).
    #[inline]
    pub fn at_mut(&mut self, slot: Slot) -> &mut T {
        &mut self.payloads[slot.set as usize][slot.way as usize]
    }

    /// Remove the line at `way` of `set`, swap-filling the hole with the
    /// set's last live line (the same order perturbation `Vec::swap_remove`
    /// produced — encodings and victim selection depend on it).
    fn remove_at(&mut self, set: usize, way: usize) -> (BlockAddr, T) {
        let base = set * self.assoc;
        let n = self.fill[set] as usize;
        let block = BlockAddr(self.blocks[base + way]);
        self.blocks[base + way] = self.blocks[base + n - 1];
        self.lru[base + way] = self.lru[base + n - 1];
        let payload = self.payloads[set].swap_remove(way);
        self.fill[set] -= 1;
        self.len -= 1;
        (block, payload)
    }

    /// Insert (or replace) a block's payload. If the set is full, the LRU
    /// victim is evicted and returned.
    ///
    /// Replacing an existing block never evicts and returns `None`.
    pub fn insert(&mut self, block: BlockAddr, payload: T) -> Option<Evicted<T>> {
        let tick = self.bump();
        let set = self.geometry.set_of(block) as usize;
        if let Some(way) = self.find(set, block) {
            self.lru[set * self.assoc + way] = tick;
            self.payloads[set][way] = payload;
            return None;
        }
        let mut evicted = None;
        let base = set * self.assoc;
        if self.fill[set] as usize == self.assoc {
            // First minimum wins on LRU ties, like `Iterator::min_by_key`.
            let victim = self.lru[base..base + self.assoc]
                .iter()
                .enumerate()
                .min_by_key(|&(_, &lru)| lru)
                .expect("full set is non-empty")
                .0;
            let (vblock, vpayload) = self.remove_at(set, victim);
            evicted = Some(Evicted {
                block: vblock,
                payload: vpayload,
            });
        }
        let n = self.fill[set] as usize;
        self.blocks[base + n] = block.0;
        self.lru[base + n] = tick;
        self.payloads[set].push(payload);
        self.fill[set] += 1;
        self.len += 1;
        evicted
    }

    /// Remove a block, returning its payload if it was resident.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<T> {
        let set = self.geometry.set_of(block) as usize;
        let way = self.find(set, block)?;
        Some(self.remove_at(set, way).1)
    }

    /// Iterate over all resident lines (block, payload).
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, &T)> {
        self.payloads.iter().enumerate().flat_map(move |(set, ps)| {
            let base = set * self.assoc;
            ps.iter()
                .enumerate()
                .map(move |(way, p)| (BlockAddr(self.blocks[base + way]), p))
        })
    }

    /// Remove every line for which `pred` returns true, invoking `on_removed`
    /// for each (used for WARD-region flushes during reconciliation).
    pub fn drain_matching(
        &mut self,
        mut pred: impl FnMut(BlockAddr, &T) -> bool,
        mut on_removed: impl FnMut(BlockAddr, T),
    ) {
        for set in 0..self.fill.len() {
            let base = set * self.assoc;
            let mut way = 0;
            while way < self.fill[set] as usize {
                if pred(BlockAddr(self.blocks[base + way]), &self.payloads[set][way]) {
                    let (block, payload) = self.remove_at(set, way);
                    on_removed(block, payload);
                } else {
                    way += 1;
                }
            }
        }
    }

    /// Remove all lines, invoking `on_removed` for each (a full cache flush).
    pub fn drain_all(&mut self, mut on_removed: impl FnMut(BlockAddr, T)) {
        for set in 0..self.fill.len() {
            let base = set * self.assoc;
            for (way, payload) in self.payloads[set].drain(..).enumerate() {
                on_removed(BlockAddr(self.blocks[base + way]), payload);
            }
            self.fill[set] = 0;
        }
        self.len = 0;
    }

    /// Mutable lookup wrapped in [`LookupMut`], updating LRU state.
    pub fn lookup_mut(&mut self, block: BlockAddr) -> Option<LookupMut<'_, T>> {
        self.get_mut(block).map(|payload| LookupMut { payload })
    }

    /// Serialize the array's complete replacement state: the LRU tick and,
    /// per set, every line *in its exact storage order* with its LRU stamp.
    /// Order matters for bit-identical resume: [`Self::insert`] evicts with
    /// a swap-remove, so within-set position influences future victim
    /// selection whenever LRU stamps tie.
    ///
    /// Payloads are emitted through `put` so the protocol layer controls
    /// their encoding.
    pub fn encode_with(&self, enc: &mut Encoder, mut put: impl FnMut(&mut Encoder, &T)) {
        enc.put_u64(self.tick);
        enc.put_usize(self.fill.len());
        for set in 0..self.fill.len() {
            let base = set * self.assoc;
            let n = self.fill[set] as usize;
            enc.put_usize(n);
            for way in 0..n {
                enc.put_u64(self.blocks[base + way]);
                enc.put_u64(self.lru[base + way]);
                put(enc, &self.payloads[set][way]);
            }
        }
    }

    /// Decode an array serialized by [`Self::encode_with`] into the given
    /// geometry, restoring tick, per-set line order and LRU stamps exactly.
    pub fn decode_with(
        geometry: CacheGeometry,
        dec: &mut Decoder<'_>,
        mut take: impl FnMut(&mut Decoder<'_>) -> Result<T, CodecError>,
    ) -> Result<CacheArray<T>, CodecError> {
        let tick = dec.take_u64()?;
        let num_sets = dec.take_usize()?;
        if num_sets != geometry.num_sets() as usize {
            return Err(CodecError::Invalid {
                what: "cache array",
                detail: format!(
                    "snapshot has {num_sets} sets, geometry expects {}",
                    geometry.num_sets()
                ),
            });
        }
        let ways = geometry.associativity() as usize;
        let mut out: CacheArray<T> = CacheArray::new(geometry);
        out.tick = tick;
        for set_idx in 0..num_sets {
            let n = dec.take_count(16)?;
            if n > ways {
                return Err(CodecError::Invalid {
                    what: "cache set",
                    detail: format!("set {set_idx} holds {n} lines, associativity is {ways}"),
                });
            }
            let base = set_idx * ways;
            for way in 0..n {
                let block = BlockAddr(dec.take_u64()?);
                if geometry.set_of(block) as usize != set_idx {
                    return Err(CodecError::Invalid {
                        what: "cache line",
                        detail: format!("block {} does not map to set {set_idx}", block.0),
                    });
                }
                if out.blocks[base..base + way].contains(&block.0) {
                    return Err(CodecError::Invalid {
                        what: "cache line",
                        detail: format!("block {} duplicated within set {set_idx}", block.0),
                    });
                }
                let lru = dec.take_u64()?;
                let payload = take(dec)?;
                out.blocks[base + way] = block.0;
                out.lru[base + way] = lru;
                out.payloads[set_idx].push(payload);
            }
            out.fill[set_idx] = n as u32;
            out.len += n;
        }
        Ok(out)
    }
}

impl<T: fmt::Debug> fmt::Debug for CacheArray<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CacheArray({:?}, {} resident)",
            self.geometry,
            self.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CacheGeometry;

    fn small() -> CacheArray<u32> {
        // 2-way, 2 sets.
        CacheArray::new(CacheGeometry::new(256, 2))
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut c = small();
        assert!(c.insert(BlockAddr(0), 7).is_none());
        assert_eq!(c.get(BlockAddr(0)), Some(&7));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn replace_updates_payload_without_eviction() {
        let mut c = small();
        c.insert(BlockAddr(0), 1);
        assert!(c.insert(BlockAddr(0), 2).is_none());
        assert_eq!(c.get(BlockAddr(0)), Some(&2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_victim_is_least_recently_used() {
        let mut c = small();
        // Blocks 0 and 2 both map to set 0 (2 sets).
        c.insert(BlockAddr(0), 10);
        c.insert(BlockAddr(2), 20);
        // Touch 0 so 2 becomes LRU.
        c.get(BlockAddr(0));
        let ev = c.insert(BlockAddr(4), 40).expect("set was full");
        assert_eq!(ev.block, BlockAddr(2));
        assert_eq!(ev.payload, 20);
        assert!(c.peek(BlockAddr(0)).is_some());
        assert!(c.peek(BlockAddr(4)).is_some());
    }

    #[test]
    fn peek_does_not_touch_lru() {
        let mut c = small();
        c.insert(BlockAddr(0), 10);
        c.insert(BlockAddr(2), 20);
        // Peek at 0: should NOT protect it.
        assert_eq!(c.peek(BlockAddr(0)), Some(&10));
        let ev = c.insert(BlockAddr(4), 40).expect("eviction");
        assert_eq!(ev.block, BlockAddr(0));
    }

    #[test]
    fn invalidate_removes() {
        let mut c = small();
        c.insert(BlockAddr(1), 5);
        assert_eq!(c.invalidate(BlockAddr(1)), Some(5));
        assert_eq!(c.invalidate(BlockAddr(1)), None);
        assert!(c.is_empty());
    }

    #[test]
    fn drain_matching_removes_only_matches() {
        let mut c = small();
        c.insert(BlockAddr(0), 1);
        c.insert(BlockAddr(1), 2);
        c.insert(BlockAddr(2), 3);
        let mut removed = Vec::new();
        c.drain_matching(|_, p| *p >= 2, |b, p| removed.push((b, p)));
        removed.sort();
        assert_eq!(removed, vec![(BlockAddr(1), 2), (BlockAddr(2), 3)]);
        assert_eq!(c.len(), 1);
        assert!(c.peek(BlockAddr(0)).is_some());
    }

    #[test]
    fn drain_all_empties() {
        let mut c = small();
        c.insert(BlockAddr(0), 1);
        c.insert(BlockAddr(1), 2);
        let mut n = 0;
        c.drain_all(|_, _| n += 1);
        assert_eq!(n, 2);
        assert!(c.is_empty());
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = small();
        // Blocks 0,2 -> set 0; blocks 1,3 -> set 1.
        c.insert(BlockAddr(0), 0);
        c.insert(BlockAddr(2), 2);
        assert!(c.insert(BlockAddr(1), 1).is_none());
        assert!(c.insert(BlockAddr(3), 3).is_none());
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut c = small();
        c.insert(BlockAddr(0), 1);
        *c.get_mut(BlockAddr(0)).unwrap() += 10;
        assert_eq!(c.peek(BlockAddr(0)), Some(&11));
    }

    #[test]
    fn slot_accessors_match_lookups_and_touch_promotes() {
        let mut c = small();
        c.insert(BlockAddr(0), 10);
        c.insert(BlockAddr(2), 20);
        let s0 = c.locate(BlockAddr(0)).expect("resident");
        assert_eq!(c.at(s0), &10);
        *c.at_mut(s0) += 1;
        assert_eq!(c.peek(BlockAddr(0)), Some(&11));
        // touch(slot) behaves like get(): 0 is protected, 2 is the victim.
        c.touch(s0);
        let ev = c.insert(BlockAddr(4), 40).expect("set was full");
        assert_eq!(ev.block, BlockAddr(2));
        // get_slot is a demand access: it promotes 4 over 0.
        let s4 = c.get_slot(BlockAddr(4)).expect("resident");
        assert_eq!(c.at(s4), &40);
        let ev = c.insert(BlockAddr(6), 60).expect("set was full");
        assert_eq!(ev.block, BlockAddr(0));
    }

    #[test]
    fn codec_roundtrip_preserves_order_lru_and_tick() {
        let mut c = small();
        c.insert(BlockAddr(0), 10);
        c.insert(BlockAddr(2), 20);
        c.get(BlockAddr(0));
        c.insert(BlockAddr(4), 40); // evicts via swap-remove, perturbing order
        c.insert(BlockAddr(1), 11);

        let mut enc = crate::codec::Encoder::new();
        c.encode_with(&mut enc, |e, p| e.put_u32(*p));
        let bytes = enc.into_bytes();
        let mut dec = crate::codec::Decoder::new(&bytes);
        let mut d: CacheArray<u32> =
            CacheArray::decode_with(c.geometry(), &mut dec, |d| d.take_u32()).unwrap();
        dec.finish().unwrap();

        // Behavioral equivalence: the same future insert evicts the same victim.
        let ev_c = c.insert(BlockAddr(6), 60).expect("eviction");
        let ev_d = d.insert(BlockAddr(6), 60).expect("eviction");
        assert_eq!(ev_c.block, ev_d.block);
        assert_eq!(ev_c.payload, ev_d.payload);
        assert_eq!(c.len(), d.len());

        // Re-encoding the decoded array reproduces the snapshot... after
        // undoing the insert above would be awkward; instead check a fresh
        // encode of both mutated arrays agrees (same storage order).
        let mut e1 = crate::codec::Encoder::new();
        c.encode_with(&mut e1, |e, p| e.put_u32(*p));
        let mut e2 = crate::codec::Encoder::new();
        d.encode_with(&mut e2, |e, p| e.put_u32(*p));
        assert_eq!(e1.into_bytes(), e2.into_bytes());
    }
}
