//! Byte-granularity write masks for sectored cache blocks.
//!
//! WARDen's reconciliation (paper §5.2, §6.1) requires *sectored caches*: one
//! write-flag bit per byte of a 64-byte block, so the hardware knows which
//! bytes of each private copy were mutated while coherence was disabled.

use crate::BLOCK_SIZE;
use std::fmt;

/// A per-byte dirty mask for one 64-byte cache block (bit *i* set ⇔ byte *i*
/// was written).
///
/// This is the "byte sectoring" of paper §6.1: it adds one metadata bit per
/// eight data bits, which [`warden-cacti`](../warden_cacti/index.html)
/// estimates at ≈7.9% cache area overhead.
///
/// # Example
///
/// ```
/// use warden_mem::WriteMask;
/// let mut m = WriteMask::empty();
/// m.set_range(4, 8); // an 8-byte store at offset 4
/// assert!(m.covers(5));
/// assert!(!m.covers(12));
/// assert_eq!(m.count(), 8);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct WriteMask(u64);

impl WriteMask {
    /// A mask with no bytes written.
    pub fn empty() -> WriteMask {
        WriteMask(0)
    }

    /// A mask with every byte written.
    pub fn full() -> WriteMask {
        WriteMask(u64::MAX)
    }

    /// Construct from a raw bit pattern (bit *i* ⇔ byte *i*).
    pub fn from_bits(bits: u64) -> WriteMask {
        WriteMask(bits)
    }

    /// The raw bit pattern.
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Mark `len` bytes starting at block offset `offset` as written.
    ///
    /// # Panics
    ///
    /// Panics if `offset + len` exceeds the block size (64).
    pub fn set_range(&mut self, offset: u64, len: u64) {
        assert!(
            offset + len <= BLOCK_SIZE,
            "write of {len} bytes at offset {offset} exceeds block"
        );
        if len == 0 {
            return;
        }
        let bits = if len == BLOCK_SIZE {
            u64::MAX
        } else {
            ((1u64 << len) - 1) << offset
        };
        self.0 |= bits;
    }

    /// Whether byte `offset` has been written.
    pub fn covers(self, offset: u64) -> bool {
        debug_assert!(offset < BLOCK_SIZE);
        self.0 & (1 << offset) != 0
    }

    /// Whether no byte has been written.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of written bytes.
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Bytes written by *both* masks — a non-empty intersection between two
    /// cores' masks is exactly the paper's *true sharing* case (§5.2).
    pub fn intersect(self, other: WriteMask) -> WriteMask {
        WriteMask(self.0 & other.0)
    }

    /// Bytes written by either mask.
    pub fn union(self, other: WriteMask) -> WriteMask {
        WriteMask(self.0 | other.0)
    }

    /// Iterate over the offsets of written bytes, ascending.
    pub fn iter_offsets(self) -> impl Iterator<Item = u64> {
        let bits = self.0;
        (0..BLOCK_SIZE).filter(move |i| bits & (1 << i) != 0)
    }

    /// Whether the two masks mark no byte in common (the paper's *false
    /// sharing* case: an order-independent reconciliation merge).
    pub fn is_disjoint(self, other: WriteMask) -> bool {
        self.0 & other.0 == 0
    }

    /// Whether every byte marked in `other` is also marked here.
    pub fn contains(self, other: WriteMask) -> bool {
        self.0 & other.0 == other.0
    }

    /// Bytes marked here but not in `other`.
    pub fn difference(self, other: WriteMask) -> WriteMask {
        WriteMask(self.0 & !other.0)
    }

    /// Bytes *not* marked in this mask (the clean bytes of a copy).
    pub fn complement(self) -> WriteMask {
        WriteMask(!self.0)
    }

    /// Widen every marked byte to its whole `sector_bytes`-aligned sector —
    /// the mask a coarser-sectored cache would have recorded for the same
    /// writes. Used by the fault injector to model (incorrect) coarse-sector
    /// reconciliation merges.
    ///
    /// # Panics
    ///
    /// Panics if `sector_bytes` is zero, not a power of two, or larger than
    /// the block.
    pub fn expand_to_sectors(self, sector_bytes: u64) -> WriteMask {
        assert!(
            sector_bytes != 0 && sector_bytes.is_power_of_two() && sector_bytes <= BLOCK_SIZE,
            "bad sector granularity {sector_bytes}"
        );
        if sector_bytes == 1 {
            return self;
        }
        if sector_bytes == BLOCK_SIZE {
            return if self.is_empty() {
                WriteMask::empty()
            } else {
                WriteMask::full()
            };
        }
        let mut out = 0u64;
        let sector_mask = (1u64 << sector_bytes) - 1;
        let mut base = 0;
        while base < BLOCK_SIZE {
            if self.0 & (sector_mask << base) != 0 {
                out |= sector_mask << base;
            }
            base += sector_bytes;
        }
        WriteMask(out)
    }
}

impl fmt::Debug for WriteMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WriteMask({:#018x})", self.0)
    }
}

impl fmt::Binary for WriteMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        assert!(WriteMask::empty().is_empty());
        assert_eq!(WriteMask::full().count(), 64);
    }

    #[test]
    fn set_range_marks_exact_bytes() {
        let mut m = WriteMask::empty();
        m.set_range(10, 4);
        for i in 0..64 {
            assert_eq!(m.covers(i), (10..14).contains(&i), "byte {i}");
        }
    }

    #[test]
    fn set_full_block() {
        let mut m = WriteMask::empty();
        m.set_range(0, 64);
        assert_eq!(m, WriteMask::full());
    }

    #[test]
    fn zero_length_write_is_noop() {
        let mut m = WriteMask::empty();
        m.set_range(5, 0);
        assert!(m.is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds block")]
    fn overlong_range_panics() {
        WriteMask::empty().set_range(60, 8);
    }

    #[test]
    fn intersection_detects_true_sharing() {
        let mut a = WriteMask::empty();
        a.set_range(0, 8);
        let mut b = WriteMask::empty();
        b.set_range(8, 8);
        // Distinct sectors: false sharing, empty intersection.
        assert!(a.intersect(b).is_empty());
        let mut c = WriteMask::empty();
        c.set_range(4, 8);
        // Overlapping sectors: true sharing.
        assert_eq!(a.intersect(c).count(), 4);
    }

    #[test]
    fn union_accumulates() {
        let mut a = WriteMask::empty();
        a.set_range(0, 1);
        let mut b = WriteMask::empty();
        b.set_range(63, 1);
        let u = a.union(b);
        assert_eq!(u.count(), 2);
        assert!(u.covers(0) && u.covers(63));
    }

    #[test]
    fn disjoint_contains_difference() {
        let mut a = WriteMask::empty();
        a.set_range(0, 8);
        let mut b = WriteMask::empty();
        b.set_range(8, 8);
        assert!(a.is_disjoint(b));
        assert!(!a.is_disjoint(a));
        assert!(a.contains(WriteMask::empty()));
        let mut sub = WriteMask::empty();
        sub.set_range(2, 3);
        assert!(a.contains(sub));
        assert!(!sub.contains(a));
        assert_eq!(a.difference(sub).count(), 5);
        assert_eq!(a.difference(a), WriteMask::empty());
        assert_eq!(a.complement().count(), 56);
        assert!(a.complement().is_disjoint(a));
    }

    #[test]
    fn expand_to_sectors_widens() {
        let mut m = WriteMask::empty();
        m.set_range(3, 1);
        m.set_range(17, 2);
        let w = m.expand_to_sectors(8);
        assert_eq!(w.count(), 16); // sectors [0,8) and [16,24)
        assert!(w.covers(0) && w.covers(7) && w.covers(16) && w.covers(23));
        assert!(!w.covers(8) && !w.covers(24));
        assert_eq!(m.expand_to_sectors(1), m);
        assert_eq!(m.expand_to_sectors(64), WriteMask::full());
        assert_eq!(WriteMask::empty().expand_to_sectors(8), WriteMask::empty());
    }

    #[test]
    #[should_panic(expected = "bad sector granularity")]
    fn expand_rejects_non_power_of_two() {
        WriteMask::empty().expand_to_sectors(3);
    }

    #[test]
    fn iter_offsets_ascending() {
        let mut m = WriteMask::empty();
        m.set_range(3, 2);
        m.set_range(40, 1);
        assert_eq!(m.iter_offsets().collect::<Vec<_>>(), vec![3, 4, 40]);
    }
}
