//! Benign fault injection must be semantically invisible: across the whole
//! benchmark suite, under both protocols, a run with CAM-exhaustion storms,
//! forced reconciliations, latency spikes, and a flaky remote link must end
//! with a final memory image bit-identical to the fault-free run.

use proptest::prelude::*;
use warden::pbbs::{Bench, Scale};
use warden::prelude::*;
use warden::rt::TraceProgram;
use warden::sim::{try_simulate, FaultPlan, SimOptions};

fn machine() -> MachineConfig {
    MachineConfig::dual_socket().with_cores(3)
}

fn faulty(seed: u64) -> SimOptions {
    SimOptions {
        check: true,
        faults: Some(FaultPlan::benign(seed)),
        ..SimOptions::default()
    }
}

#[test]
fn benign_faults_preserve_every_benchmark_image() {
    let m = machine();
    let mut injected_anything = false;
    for bench in Bench::ALL {
        let p = bench.build(Scale::Tiny);
        for proto in [ProtocolId::Mesi, ProtocolId::Warden] {
            let clean = simulate(&p, &m, proto);
            let shaken = try_simulate(&p, &m, proto, &faulty(0xFAB + p.stats.events)).unwrap();
            assert_eq!(
                clean.memory_image_digest,
                shaken.memory_image_digest,
                "{} under {:?}: benign faults changed the final memory image",
                bench.name(),
                proto
            );
            let (lo, hi) = p.address_range;
            assert_eq!(
                shaken
                    .final_memory
                    .first_difference(&clean.final_memory, lo, hi - lo),
                None,
                "{} under {:?}: image differs byte-wise",
                bench.name(),
                proto
            );
            assert!(
                shaken.violations.is_empty(),
                "{} under {:?}: benign faults must not trip the checker: {}",
                bench.name(),
                proto,
                shaken.violations[0]
            );
            let f = &shaken.stats.faults;
            let events = f.latency_spikes + f.cam_storms + f.forced_reconciles + f.link_retries;
            injected_anything |= events > 0;
            // Injected delay is accounted, never lost: link timeouts and
            // backoffs are part of the recorded stall total.
            assert!(f.timeout_cycles + f.backoff_cycles <= f.stall_cycles);
        }
    }
    assert!(
        injected_anything,
        "the benign plan never fired across the whole suite — the test is vacuous"
    );
}

#[test]
fn fault_injection_is_deterministic() {
    let m = machine();
    let p = Bench::Msort.build(Scale::Tiny);
    let a = try_simulate(&p, &m, ProtocolId::Warden, &faulty(77)).unwrap();
    let b = try_simulate(&p, &m, ProtocolId::Warden, &faulty(77)).unwrap();
    assert_eq!(a.stats, b.stats, "same seed must replay identically");
    assert_eq!(a.memory_image_digest, b.memory_image_digest);
    let c = try_simulate(&p, &m, ProtocolId::Warden, &faulty(78)).unwrap();
    assert_eq!(
        a.memory_image_digest, c.memory_image_digest,
        "a different fault schedule still must not change the answer"
    );
}

#[test]
fn fault_stats_feed_the_latency_and_energy_models() {
    let m = machine();
    let p = Bench::Primes.build(Scale::Tiny);
    // A plan that spikes on every access, with an aggressive flaky link.
    let mut plan = FaultPlan::benign(5);
    plan.spike_prob = 1.0;
    plan.spike_cycles = 50;
    plan.link_degrade_prob = 0.5;
    let opts = SimOptions {
        faults: Some(plan),
        ..SimOptions::default()
    };
    let clean = simulate(&p, &m, ProtocolId::Warden);
    let shaken = try_simulate(&p, &m, ProtocolId::Warden, &opts).unwrap();
    assert!(shaken.stats.faults.latency_spikes > 0);
    assert!(
        shaken.stats.cycles > clean.stats.cycles,
        "universal latency spikes must slow the run down"
    );
    assert_eq!(clean.memory_image_digest, shaken.memory_image_digest);
    if shaken.stats.faults.link_retries > 0 {
        assert!(
            shaken.energy.interconnect_nj > clean.energy.interconnect_nj,
            "link retries must cost interconnect energy"
        );
    }
}

#[test]
fn invalid_plans_are_rejected_not_run() {
    let m = machine();
    let p = Bench::MakeArray.build(Scale::Tiny);
    let mut plan = FaultPlan::benign(1);
    plan.spike_prob = 2.0;
    let opts = SimOptions {
        faults: Some(plan),
        ..SimOptions::default()
    };
    assert!(try_simulate(&p, &m, ProtocolId::Warden, &opts).is_err());
}

/// Random fork-join programs (same generator family as `proptest_rt`) under
/// random benign plans: the image must always match the fault-free run.
fn build(script: Vec<u8>) -> TraceProgram {
    trace_program("fault-prop", RtOptions::default(), move |ctx| {
        let xs = ctx.alloc::<u64>(96);
        for (idx, &op) in script.iter().enumerate() {
            let i = idx as u64;
            match op % 5 {
                0 => ctx.write(&xs, i % 96, u64::from(op)),
                1 => {
                    let _ = ctx.read(&xs, i % 96);
                }
                2 => {
                    let _ = ctx.fetch_add(&xs, i % 96, u64::from(op) + 1);
                }
                3 => {
                    let v = u64::from(op);
                    ctx.fork2(
                        |c| {
                            let s = c.alloc_scratch::<u64>(8);
                            for j in 0..8 {
                                c.write(&s, j, v ^ j);
                            }
                        },
                        |c| c.work(v % 17 + 1),
                    );
                }
                _ => ctx.work(u64::from(op) % 13 + 1),
            }
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_programs_survive_random_benign_plans(
        script in proptest::collection::vec(any::<u8>(), 0..60),
        seed in any::<u64>(),
        proto_warden in any::<bool>(),
    ) {
        let p = build(script);
        let m = MachineConfig::single_socket().with_cores(2);
        let proto = if proto_warden { ProtocolId::Warden } else { ProtocolId::Mesi };
        let clean = simulate(&p, &m, proto);
        let shaken = try_simulate(&p, &m, proto, &faulty(seed)).unwrap();
        prop_assert_eq!(clean.memory_image_digest, shaken.memory_image_digest);
        prop_assert!(shaken.violations.is_empty());
    }
}
