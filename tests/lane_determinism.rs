//! Lane determinism: a laned replay (sharded per-socket core selection
//! merged in canonical `(clock, core, seq)` order) must be **bit-identical**
//! to the sequential engine — same memory digests, same statistics, same
//! observability epoch tables — at every lane count, on benchmark traces
//! and on random fork-join programs, and checkpoints must resume across
//! differing lane counts.

use proptest::prelude::*;
use warden::pbbs::{Bench, Scale};
use warden::prelude::*;
use warden::rt::TraceProgram;
use warden::sim::checkpoint::options_fingerprint;
use warden::sim::{simulate_with_options, SimEngine, SimOptions};

fn laned(lanes: usize) -> SimOptions {
    SimOptions {
        lanes,
        ..SimOptions::default()
    }
}

/// Assert two outcomes are bit-identical in everything deterministic
/// (the lane report itself is diagnostic and differs by construction).
fn assert_identical(a: &SimOutcome, b: &SimOutcome, what: &str) {
    assert_eq!(
        a.memory_image_digest, b.memory_image_digest,
        "{what}: digest"
    );
    assert_eq!(a.stats, b.stats, "{what}: stats");
    assert_eq!(a.region_peak, b.region_peak, "{what}: region peak");
    assert_eq!(
        format!("{:?}", a.violations),
        format!("{:?}", b.violations),
        "{what}: violations"
    );
    match (&a.obs, &b.obs) {
        (None, None) => {}
        (Some(x), Some(y)) => {
            // Compare field-by-field, skipping the host-side wall-clock
            // span profile (nondeterministic by nature).
            assert_eq!(x.epoch_shift, y.epoch_shift, "{what}: epoch shift");
            assert_eq!(x.epochs, y.epochs, "{what}: epoch tables");
            assert_eq!(x.timeline, y.timeline, "{what}: obs timeline");
            assert_eq!(x.metrics, y.metrics, "{what}: obs metrics");
            assert_eq!(x.region_spans, y.region_spans, "{what}: region spans");
            assert_eq!(x.dropped_events, y.dropped_events, "{what}: drops");
        }
        _ => panic!("{what}: observability presence differs"),
    }
}

#[test]
fn benchmarks_are_lane_count_invariant() {
    let machine = MachineConfig::dual_socket().with_cores(8);
    for bench in [Bench::Msort, Bench::SuffixArray, Bench::Fib] {
        let program = bench.build(Scale::Tiny);
        for protocol in [ProtocolId::Mesi, ProtocolId::Warden] {
            let seq = simulate_with_options(&program, &machine, protocol, &laned(1));
            assert!(seq.lane_report.is_none(), "lanes=1 is the sequential scan");
            for lanes in [2usize, 4, 8] {
                let lan = simulate_with_options(&program, &machine, protocol, &laned(lanes));
                assert_identical(&seq, &lan, &format!("{bench:?}/{protocol:?}/lanes={lanes}"));
                let report = lan.lane_report.expect("laned run reports lanes");
                assert_eq!(report.lanes.len(), lanes);
                assert_eq!(
                    report.lanes.iter().map(|l| l.events).sum::<u64>(),
                    report.merges,
                    "per-lane events must partition the merges"
                );
                assert!(
                    report.lanes.iter().all(|l| l.local_events <= l.events),
                    "lane-local work is a subset of lane work"
                );
            }
        }
    }
}

#[test]
fn lanes_clamp_on_a_single_core_machine() {
    let machine = MachineConfig::single_socket().with_cores(1);
    let program = Bench::Fib.build(Scale::Tiny);
    let seq = simulate_with_options(&program, &machine, ProtocolId::Warden, &laned(1));
    let lan = simulate_with_options(&program, &machine, ProtocolId::Warden, &laned(4));
    assert_identical(&seq, &lan, "single-core clamp");
    assert_eq!(lan.lane_report.expect("laned").lanes.len(), 1);
}

#[test]
fn lane_count_is_not_part_of_the_options_fingerprint() {
    // Same computation at any lane count: a checkpoint written at one lane
    // count must verify (and resume) at any other.
    assert_eq!(
        options_fingerprint(&laned(1)),
        options_fingerprint(&laned(4))
    );
    let with_check = SimOptions {
        check: true,
        ..laned(4)
    };
    assert_ne!(
        options_fingerprint(&laned(4)),
        options_fingerprint(&with_check),
        "sanity: fingerprints still discriminate real option changes"
    );
}

#[test]
fn checkpoints_resume_across_differing_lane_counts() {
    let machine = MachineConfig::dual_socket().with_cores(4);
    let program = Bench::Msort.build(Scale::Tiny);
    let reference = simulate(&program, &machine, ProtocolId::Warden);

    for (write_lanes, resume_lanes) in [(1usize, 4usize), (4, 1), (2, 4)] {
        let mut eng = SimEngine::new(&program, &machine, ProtocolId::Warden, &laned(write_lanes));
        for _ in 0..5_000 {
            assert!(eng.step(), "trace must outlast the snapshot point");
        }
        let frame = eng.snapshot_to_bytes();
        let mut resumed = SimEngine::resume_from_bytes(
            &program,
            &machine,
            ProtocolId::Warden,
            &laned(resume_lanes),
            &frame,
        )
        .expect("a frame written at one lane count resumes at another");
        while resumed.step() {}
        let out = resumed.finish();
        assert_eq!(
            out.memory_image_digest, reference.memory_image_digest,
            "resume {write_lanes}->{resume_lanes}: digest"
        );
        assert_eq!(
            out.stats, reference.stats,
            "resume {write_lanes}->{resume_lanes}: stats"
        );
    }
}

/// A small recursive fork-join program (same shape as `proptest_rt`): each
/// node either computes and writes shared + scratch slices, or forks two
/// subtrees.
#[derive(Clone, Debug)]
enum Tree {
    Leaf { work: u64, writes: u8 },
    Fork(Box<Tree>, Box<Tree>),
}

fn tree_strategy() -> impl Strategy<Value = Tree> {
    let leaf = (1u64..200, any::<u8>()).prop_map(|(work, writes)| Tree::Leaf { work, writes });
    leaf.prop_recursive(4, 32, 2, |inner| {
        (inner.clone(), inner).prop_map(|(a, b)| Tree::Fork(Box::new(a), Box::new(b)))
    })
}

fn leaves(t: &Tree) -> u64 {
    match t {
        Tree::Leaf { .. } => 1,
        Tree::Fork(a, b) => leaves(a) + leaves(b),
    }
}

fn run_tree(ctx: &mut TaskCtx<'_>, t: &Tree, out: &SimSlice<u64>, next: &mut u64) {
    match t {
        Tree::Leaf { work, writes } => {
            ctx.work(*work);
            let scratch = ctx.alloc_scratch::<u64>(u64::from(*writes) + 1);
            for i in 0..scratch.len() {
                ctx.write(&scratch, i, i ^ *work);
            }
            let slot = *next;
            *next += 1;
            let check = (0..scratch.len()).fold(0u64, |acc, i| acc ^ ctx.read(&scratch, i));
            ctx.write(out, slot, check.wrapping_add(slot));
        }
        Tree::Fork(a, b) => {
            let la = leaves(a);
            let mut na = *next;
            let mut nb = *next + la;
            *next += leaves(t);
            let (aa, bb) = (a.clone(), b.clone());
            let out_a = *out;
            let out_b = *out;
            ctx.fork2_dyn(&mut |c| run_tree(c, &aa, &out_a, &mut na), &mut |c| {
                run_tree(c, &bb, &out_b, &mut nb)
            });
        }
    }
}

fn build(t: &Tree) -> TraceProgram {
    let n = leaves(t);
    let t = t.clone();
    trace_program("lanetree", RtOptions::default(), move |ctx| {
        let out = ctx.alloc::<u64>(n);
        let mut next = 0;
        run_tree(ctx, &t, &out, &mut next);
        let mut acc = 0u64;
        for i in 0..n {
            acc = acc.wrapping_add(ctx.read(&out, i));
        }
        std::hint::black_box(acc);
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random traces on random machine shapes replay bit-identically at
    /// 1, 2 and 4 lanes — digests, statistics, and (observability on)
    /// epoch tables and timelines all equal, with the SWMR checker live.
    #[test]
    fn random_traces_are_lane_count_invariant(
        t in tree_strategy(),
        cores in 1usize..9,
        sockets in 1usize..3,
        seed in any::<u64>(),
        protocol_warden in any::<bool>(),
    ) {
        let p = build(&t);
        prop_assert!(p.check_invariants().is_ok());
        let m = match sockets {
            1 => MachineConfig::single_socket(),
            _ => MachineConfig::dual_socket(),
        }
        .with_cores(cores)
        .with_seed(seed);
        let protocol = if protocol_warden { ProtocolId::Warden } else { ProtocolId::Mesi };
        let opts = |lanes| SimOptions { check: true, obs: true, lanes, ..SimOptions::default() };
        let seq = simulate_with_options(&p, &m, protocol, &opts(1));
        prop_assert!(seq.violations.is_empty());
        for lanes in [2usize, 4] {
            let lan = simulate_with_options(&p, &m, protocol, &opts(lanes));
            assert_identical(&seq, &lan, &format!("random/{protocol:?}/lanes={lanes}"));
        }
    }
}
