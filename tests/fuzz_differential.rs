//! Integration tests of the differential fuzz gate and the coherence
//! atlas: clean generated workloads must pass N-way protocol agreement, a
//! deliberately mutated protocol must be caught and shrunk, and the atlas
//! sweep must survive a mid-sweep kill with byte-identical records.

use warden::bench::campaign::CampaignConfig;
use warden::bench::{check_spec, run_atlas, run_fuzz_gate, FuzzOptions, HarnessError};
use warden::coherence::{ProtocolId, ProtocolMutation};
use warden::rt::workload::{SharingPattern, WorkloadSpec};

fn quiet(mut cfg: CampaignConfig) -> CampaignConfig {
    cfg.quiet = true;
    cfg
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("warden-fuzztest-{tag}-{}", std::process::id()))
}

#[test]
fn clean_generated_workloads_agree_under_every_protocol() {
    let cfg = quiet(CampaignConfig::ephemeral());
    let opts = FuzzOptions::new(7, 0xf00d);
    let report = run_fuzz_gate(&opts, &cfg).unwrap();
    assert_eq!(report.workloads, 7);
    assert_eq!(report.runs, 7 * ProtocolId::ALL.len());
    assert!(
        report.disagreements.is_empty(),
        "clean workloads disagreed: {:?}",
        report.disagreements
    );
}

#[test]
fn mutated_protocol_is_caught_shrunk_and_archived() {
    let dir = temp_dir("artifacts");
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = quiet(CampaignConfig::ephemeral());
    let mut opts = FuzzOptions::new(4, 11);
    opts.mutate = Some((ProtocolId::SelfInv, ProtocolMutation::SkipSelfInvalidate));
    opts.artifacts = Some(dir.clone());
    let report = run_fuzz_gate(&opts, &cfg).unwrap();
    assert!(
        !report.disagreements.is_empty(),
        "an injected self-invalidation defect escaped the gate"
    );
    for d in &report.disagreements {
        // The shrunk spec is no larger than the original on every knob...
        let min = WorkloadSpec::from_token(&d.token).unwrap();
        let orig = WorkloadSpec::from_token(&d.original_token).unwrap();
        assert_eq!(min.pattern, orig.pattern);
        assert_eq!(min.seed, orig.seed);
        assert!(min.tasks <= orig.tasks && min.rounds <= orig.rounds);
        assert!(min.ops <= orig.ops && min.footprint <= orig.footprint);
        // ...still fails on direct replay...
        let verdict = check_spec(&min, &opts.machine, &opts.protocols, opts.mutate);
        assert!(
            verdict.is_some(),
            "shrunk token {} no longer fails",
            d.token
        );
        // ...and was archived as a replayable seed file.
        let path = d.archived.as_ref().expect("artifact dir was set");
        let body = std::fs::read_to_string(path).unwrap();
        assert!(body.contains(&format!("token: {}", d.token)), "{body}");
        assert!(body.contains("--replay"), "{body}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn clean_replay_of_a_spec_returns_no_verdict() {
    let machine = FuzzOptions::new(1, 0).machine;
    for pattern in SharingPattern::ALL {
        let spec = WorkloadSpec::new(pattern, 0x5eed);
        assert_eq!(
            check_spec(&spec, &machine, &ProtocolId::ALL, None),
            None,
            "{pattern}"
        );
    }
}

/// A SIGKILL mid-sweep must not corrupt the atlas: resuming the same
/// campaign directory completes the sweep, and the records are
/// byte-identical to an uninterrupted reference sweep.
#[test]
fn atlas_sweep_resumes_after_mid_sweep_kill_byte_identically() {
    let seed = 77;

    // Uninterrupted reference.
    let reference = run_atlas(seed, &quiet(CampaignConfig::ephemeral())).unwrap();
    let reference_records = reference.records();

    // Interrupted sweep: stop the supervisor mid-flight (the same state a
    // SIGKILL leaves on disk — completed runs recorded, the rest queued).
    let dir = temp_dir("atlas-resume");
    let _ = std::fs::remove_dir_all(&dir);
    let mut killed = quiet(CampaignConfig::new(&dir));
    killed.workers = 1;
    killed.abort_after_runs = Some(23);
    match run_atlas(seed, &killed) {
        Err(HarnessError::Aborted { completed }) => assert_eq!(completed, 23),
        other => panic!("expected mid-sweep abort, got {other:?}"),
    }

    // Resume: same directory, no abort hook. Completed runs replay from
    // their durable records; only the remainder simulates.
    let resumed = run_atlas(seed, &quiet(CampaignConfig::new(&dir))).unwrap();
    assert_eq!(resumed.records(), reference_records);

    // Resuming a *finished* sweep is also byte-stable.
    let again = run_atlas(seed, &quiet(CampaignConfig::new(&dir))).unwrap();
    assert_eq!(again.records(), reference_records);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn atlas_records_and_winners_are_consistent() {
    let atlas = run_atlas(3, &quiet(CampaignConfig::ephemeral())).unwrap();
    let groups = atlas.cells.len() / ProtocolId::ALL.len();
    let wins = atlas.winners();
    assert_eq!(wins.len(), groups);
    // Every (machine, pattern) group carries one row per protocol and one
    // agreed digest.
    for group in atlas.cells.chunks(ProtocolId::ALL.len()) {
        for (cell, &proto) in group.iter().zip(ProtocolId::ALL.iter()) {
            assert_eq!(cell.protocol, proto);
            assert_eq!(cell.digest, group[0].digest);
            assert_eq!(cell.machine, group[0].machine);
            assert_eq!(cell.pattern, group[0].pattern);
        }
        let best = group.iter().map(|c| c.cycles).min().unwrap();
        let winner = wins
            .iter()
            .find(|(m, p, _)| *m == group[0].machine && *p == group[0].pattern)
            .unwrap();
        let winner_cell = group.iter().find(|c| c.protocol == winner.2).unwrap();
        assert_eq!(winner_cell.cycles, best);
    }
    // The records table is one header comment, one CSV header, one line
    // per cell.
    assert_eq!(atlas.records().lines().count(), 2 + atlas.cells.len());
}
