//! Property tests of the runtime + simulator pipeline: random fork-join
//! programs must produce well-formed traces whose replay reproduces the
//! logical memory image under both protocols on random machine shapes.

use proptest::prelude::*;
use warden::prelude::*;
use warden::rt::TraceProgram;

/// A small recursive program description: at each node either compute
/// sequentially or fork two subtrees, with leaves writing slices of a shared
/// output array and their own scratch.
#[derive(Clone, Debug)]
enum Tree {
    Leaf { work: u64, writes: u8 },
    Fork(Box<Tree>, Box<Tree>),
}

fn tree_strategy() -> impl Strategy<Value = Tree> {
    let leaf = (1u64..200, any::<u8>()).prop_map(|(work, writes)| Tree::Leaf { work, writes });
    leaf.prop_recursive(5, 64, 2, |inner| {
        (inner.clone(), inner).prop_map(|(a, b)| Tree::Fork(Box::new(a), Box::new(b)))
    })
}

fn leaves(t: &Tree) -> u64 {
    match t {
        Tree::Leaf { .. } => 1,
        Tree::Fork(a, b) => leaves(a) + leaves(b),
    }
}

fn run_tree(ctx: &mut TaskCtx<'_>, t: &Tree, out: &SimSlice<u64>, next: &mut u64) {
    match t {
        Tree::Leaf { work, writes } => {
            ctx.work(*work);
            let scratch = ctx.alloc_scratch::<u64>(u64::from(*writes) + 1);
            for i in 0..scratch.len() {
                ctx.write(&scratch, i, i ^ *work);
            }
            let slot = *next;
            *next += 1;
            let check = (0..scratch.len()).fold(0u64, |acc, i| acc ^ ctx.read(&scratch, i));
            ctx.write(out, slot, check.wrapping_add(slot));
        }
        Tree::Fork(a, b) => {
            // The logical leaf numbering must match the replayed structure,
            // so split the slot range before forking.
            let la = leaves(a);
            let mut na = *next;
            let mut nb = *next + la;
            *next += leaves(t);
            let (aa, bb) = (a.clone(), b.clone());
            let out_a = *out;
            let out_b = *out;
            ctx.fork2_dyn(&mut |c| run_tree(c, &aa, &out_a, &mut na), &mut |c| {
                run_tree(c, &bb, &out_b, &mut nb)
            });
        }
    }
}

fn build(t: &Tree) -> TraceProgram {
    let n = leaves(t);
    let t = t.clone();
    trace_program("proptree", RtOptions::default(), move |ctx| {
        let out = ctx.alloc::<u64>(n);
        let mut next = 0;
        run_tree(ctx, &t, &out, &mut next);
        // Read everything back (parent consuming leaf results).
        let mut acc = 0u64;
        for i in 0..n {
            acc = acc.wrapping_add(ctx.read(&out, i));
        }
        std::hint::black_box(acc);
    })
}

/// Replays the shrunk input recorded in `proptest_rt.proptest-regressions`
/// as a plain unit test, so the historical failure stays covered even if the
/// regression file is lost or the proptest seeding scheme changes.
#[test]
fn regression_unbalanced_tree_replays_faithfully() {
    fn leaf(work: u64, writes: u8) -> Tree {
        Tree::Leaf { work, writes }
    }
    fn fork(a: Tree, b: Tree) -> Tree {
        Tree::Fork(Box::new(a), Box::new(b))
    }
    let t = fork(
        fork(leaf(1, 0), fork(leaf(6, 168), leaf(166, 52))),
        fork(
            fork(leaf(12, 23), leaf(67, 95)),
            fork(leaf(172, 211), fork(leaf(23, 196), leaf(147, 255))),
        ),
    );
    let p = build(&t);
    p.check_invariants().unwrap();
    let m = MachineConfig::single_socket()
        .with_cores(2)
        .with_seed(3463122757351628199);
    let mesi = simulate(&p, &m, ProtocolId::Mesi);
    let warden = simulate(&p, &m, ProtocolId::Warden);
    assert_eq!(mesi.memory_image_digest, warden.memory_image_digest);
    let (lo, hi) = p.address_range;
    assert_eq!(
        warden.final_memory.first_difference(&p.memory, lo, hi - lo),
        None
    );
    assert_eq!(mesi.stats.tasks, p.tasks.len() as u64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_trees_replay_faithfully(
        t in tree_strategy(),
        cores in 1usize..5,
        sockets in 1usize..3,
        seed in any::<u64>(),
    ) {
        let p = build(&t);
        prop_assert!(p.check_invariants().is_ok());
        let m = match sockets {
            1 => MachineConfig::single_socket(),
            _ => MachineConfig::dual_socket(),
        }
        .with_cores(cores)
        .with_seed(seed);
        let mesi = simulate(&p, &m, ProtocolId::Mesi);
        let warden = simulate(&p, &m, ProtocolId::Warden);
        prop_assert_eq!(mesi.memory_image_digest, warden.memory_image_digest);
        let (lo, hi) = p.address_range;
        prop_assert_eq!(warden.final_memory.first_difference(&p.memory, lo, hi - lo), None);
        // Every task ran.
        prop_assert_eq!(mesi.stats.tasks, p.tasks.len() as u64);
    }

    #[test]
    fn instruction_counts_match_trace(t in tree_strategy()) {
        let p = build(&t);
        let m = MachineConfig::single_socket().with_cores(2);
        let mesi = simulate(&p, &m, ProtocolId::Mesi);
        // MESI executes exactly the traced instructions minus the region
        // instructions (which only a WARDen machine runs).
        let region_instrs: u64 = p
            .tasks
            .iter()
            .flat_map(|t| &t.events)
            .filter(|e| {
                matches!(
                    e,
                    warden::rt::Event::RegionAdd { .. } | warden::rt::Event::RegionRemove { .. }
                )
            })
            .count() as u64;
        prop_assert_eq!(mesi.stats.instructions + region_instrs, p.stats.instructions);
    }
}
