//! The coherence invariant checker: clean runs under both protocols must
//! produce zero violations, and every seeded protocol mutation must be
//! caught, naming the corrupted block and the transition history that led
//! there.

use warden::coherence::{
    CacheConfig, CoherenceSystem, InvariantKind, LatencyModel, ProtocolId, ProtocolMutation,
    Topology,
};
use warden::mem::{Addr, PAGE_SIZE};
use warden::pbbs::{Bench, Scale};
use warden::prelude::*;
use warden::sim::{try_simulate, SimOptions};

fn sys(protocol: ProtocolId) -> CoherenceSystem {
    let mut s = CoherenceSystem::new(
        Topology::new(1, 2),
        LatencyModel::xeon_gold_6126(),
        CacheConfig::paper(2),
        protocol,
    );
    s.enable_checker();
    s
}

fn page(n: u64) -> Addr {
    Addr(n * PAGE_SIZE)
}

#[test]
fn clean_benchmarks_have_zero_violations() {
    let m = MachineConfig::dual_socket().with_cores(2);
    let opts = SimOptions {
        check: true,
        ..SimOptions::default()
    };
    for bench in [Bench::Primes, Bench::Msort, Bench::Dedup, Bench::Quickhull] {
        let p = bench.build(Scale::Tiny);
        for proto in [ProtocolId::Mesi, ProtocolId::Warden] {
            let out = try_simulate(&p, &m, proto, &opts).unwrap();
            assert!(
                out.violations.is_empty(),
                "{} under {:?}: {}",
                bench.name(),
                proto,
                out.violations[0]
            );
        }
    }
}

#[test]
fn checker_actually_inspects_transactions() {
    let mut s = sys(ProtocolId::Warden);
    let a = page(4);
    s.store(0, a, &[1]);
    s.load(1, a, 8);
    let report = s.checker_summary().unwrap();
    assert!(report.transactions > 0, "checker saw no transactions");
    assert!(report.blocks_checked > 0);
    assert!(s.violations().is_empty());
}

/// The unmutated protocol performs W-entry synchronization on the
/// Owned→Ward edge; with the sync skipped, the checker must flag the edge.
#[test]
fn skipped_ward_entry_sync_is_detected() {
    // Baseline: the same scenario without the mutation is clean and does
    // perform the sync.
    let mut clean = sys(ProtocolId::Warden);
    let a = page(4);
    clean.store(0, a, &[0xAB]);
    clean.add_region(page(4), page(5)).unwrap();
    clean.load(1, a, 8);
    assert!(
        clean.stats().ward_entry_syncs > 0,
        "scenario must exercise the sync"
    );
    assert!(clean.violations().is_empty());

    let mut s = sys(ProtocolId::Warden);
    s.inject_mutation(ProtocolMutation::SkipWardEntrySync);
    s.store(0, a, &[0xAB]);
    s.add_region(page(4), page(5)).unwrap();
    s.load(1, a, 8);
    let v = s
        .violations()
        .iter()
        .find(|v| v.kind == InvariantKind::WardEntrySync)
        .expect("skipping W-entry sync must be caught");
    assert_eq!(
        v.block,
        a.block(),
        "violation must name the corrupted block"
    );
    assert!(
        !v.history.is_empty(),
        "violation must carry transition history"
    );
}

/// Two cores write disjoint bytes of one block inside a WARD region; set up
/// so that reconciliation merges both masks into the LLC.
fn disjoint_writes_then_reconcile(mutation: Option<ProtocolMutation>) -> CoherenceSystem {
    let mut s = sys(ProtocolId::Warden);
    if let Some(m) = mutation {
        s.inject_mutation(m);
    }
    let id = s.add_region(page(4), page(5)).unwrap();
    let a = page(4);
    // Core 1 writes byte 8 first, then core 0 writes byte 0 — so core 1's
    // private copy of byte 0 is stale, which a coarse merge will expose.
    s.store(1, a + 8, &[0x22]);
    s.store(0, a, &[0x11]);
    s.remove_region(id);
    s
}

#[test]
fn disjoint_ward_writes_reconcile_cleanly() {
    let s = disjoint_writes_then_reconcile(None);
    assert!(s.violations().is_empty());
    let a = page(4);
    let mut b = [0u8; 16];
    s.final_memory_image().read_bytes(a, &mut b);
    assert_eq!((b[0], b[8]), (0x11, 0x22));
}

#[test]
fn skipped_reconciliation_writeback_is_detected() {
    let s = disjoint_writes_then_reconcile(Some(ProtocolMutation::SkipReconciliationWriteback));
    let v = s
        .violations()
        .iter()
        .find(|v| v.kind == InvariantKind::DirtyConservation)
        .expect("dropping the reconciliation writeback must be caught");
    assert_eq!(v.block, page(4).block());
}

#[test]
fn coarse_sector_merge_is_detected() {
    let s = disjoint_writes_then_reconcile(Some(ProtocolMutation::CoarseSectorMerge {
        sector_bytes: 64,
    }));
    let v = s
        .violations()
        .iter()
        .find(|v| v.kind == InvariantKind::DirtyConservation)
        .expect("a whole-block coarse merge clobbers a neighbour's byte");
    assert_eq!(v.block, page(4).block());
}

/// Mutations must also surface through the engine entry point: a full
/// benchmark run with a corrupted protocol reports violations (and the
/// corruption is real — the image diverges from the MESI baseline or the
/// checker names the dropped bytes).
#[test]
fn engine_surfaces_mutation_violations() {
    let m = MachineConfig::single_socket().with_cores(2);
    let p = Bench::Primes.build(Scale::Tiny);
    let opts = SimOptions {
        check: true,
        faults: Some(warden::sim::FaultPlan::mutation_only(
            9,
            ProtocolMutation::SkipReconciliationWriteback,
        )),
        ..SimOptions::default()
    };
    let out = try_simulate(&p, &m, ProtocolId::Warden, &opts).unwrap();
    assert!(
        !out.violations.is_empty(),
        "a dropped reconciliation writeback must be detected in a real run"
    );
    // The dropped writeback shows up as a conservation failure (later state
    // checks may pile further violations on top of the corrupted LLC).
    assert!(out
        .violations
        .iter()
        .any(|v| v.kind == InvariantKind::DirtyConservation));
}
