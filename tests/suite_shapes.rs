//! Workload-shape assertions over the benchmark suite: the paper's §7.1
//! methodology claims each benchmark exercises a different memory regime —
//! this pins those regimes so a refactor can't silently turn, say, the
//! compute-bound `fib` into a memory-bound workload.

use warden::pbbs::{Bench, Scale};
use warden::rt::summarize;

#[test]
fn every_benchmark_has_usable_parallelism() {
    for bench in Bench::ALL {
        let p = bench.build(Scale::Tiny);
        let s = summarize(&p);
        assert!(
            s.parallelism() > 1.2,
            "{}: parallelism {:.2} too low",
            bench.name(),
            s.parallelism()
        );
        assert!(s.leaves >= 2, "{}", bench.name());
    }
}

#[test]
fn compute_bound_benchmarks_are_compute_bound() {
    for bench in [Bench::Fib, Bench::Nqueens] {
        let p = bench.build(Scale::Tiny);
        let s = summarize(&p);
        assert!(
            s.compute_instructions * 2 > s.instructions,
            "{}: compute share too small ({} of {})",
            bench.name(),
            s.compute_instructions,
            s.instructions
        );
    }
}

#[test]
fn memory_bound_benchmarks_are_memory_bound() {
    for bench in [Bench::Msort, Bench::Tokens] {
        let p = bench.build(Scale::Tiny);
        let s = summarize(&p);
        let mem = s.loads + s.stores + s.rmws;
        assert!(
            mem * 5 > s.instructions * 2,
            "{}: memory share too small ({mem} of {})",
            bench.name(),
            s.instructions
        );
    }
}

#[test]
fn atomics_appear_only_where_expected() {
    // Join CASes exist everywhere; *algorithmic* atomics (beyond ~2 per
    // fork) only in dedup, nn and quickhull.
    for bench in Bench::ALL {
        let p = bench.build(Scale::Tiny);
        let s = summarize(&p);
        let join_rmws = 2 * s.forks;
        let algo_rmws = s.rmws.saturating_sub(join_rmws);
        let expects_atomics = matches!(bench, Bench::Dedup | Bench::Nn | Bench::Quickhull);
        if expects_atomics {
            assert!(algo_rmws > 0, "{} should use atomics", bench.name());
        } else {
            assert_eq!(algo_rmws, 0, "{} grew unexpected atomics", bench.name());
        }
    }
}

#[test]
fn ward_marking_covers_heap_traffic() {
    // The runtime's automatic marking must cover a nontrivial share of the
    // suite's accesses (the §7.2 "accesses in a WARD region" metric), with
    // the declared-region benchmarks well above the rest.
    // Declared flags regions need page-sized arrays: check at paper scale.
    let primes = Bench::Primes.build(Scale::Paper);
    let frac = primes.stats.accesses_in_ward as f64 / primes.stats.memory_accesses as f64;
    assert!(frac > 0.3, "primes ward coverage {frac:.2}");
    for bench in Bench::ALL {
        let p = bench.build(Scale::Tiny);
        assert!(
            p.stats.accesses_in_ward > 0,
            "{}: no ward-covered accesses at all",
            bench.name()
        );
        assert!(p.stats.regions_marked > 0, "{}", bench.name());
    }
}

#[test]
fn tiny_and_paper_scales_share_structure() {
    // Paper-scale inputs must scale the same algorithms up, not change them:
    // the event *mix* stays within a factor, tasks grow.
    for bench in [Bench::Grep, Bench::Primes] {
        let tiny = summarize(&bench.build(Scale::Tiny));
        let paper = summarize(&bench.build(Scale::Paper));
        assert!(paper.tasks >= tiny.tasks, "{}", bench.name());
        assert!(paper.instructions > tiny.instructions, "{}", bench.name());
        let tiny_mem_share = (tiny.loads + tiny.stores) as f64 / tiny.instructions as f64;
        let paper_mem_share = (paper.loads + paper.stores) as f64 / paper.instructions as f64;
        assert!(
            (tiny_mem_share / paper_mem_share).clamp(0.2, 5.0) == tiny_mem_share / paper_mem_share,
            "{}: event mix changed across scales",
            bench.name()
        );
    }
}
