//! The paper's two flavours of benign WAW races, end to end:
//!
//! * `primes` — same-value races: all schedules and both protocols converge
//!   to the *identical* memory image;
//! * `bfs` — different-value races (§2.1's inexact search): images may
//!   legitimately differ across schedules and protocols, but every image
//!   satisfies the semantic invariant — "either value is accepted"
//!   (Figure 3, Event 3).

use warden::pbbs::{bfs_with_layout, primes, validate_parents};
use warden::prelude::*;

#[test]
fn same_value_races_converge_exactly() {
    let p = primes(2000, 4);
    let m = MachineConfig::dual_socket().with_cores(3);
    let mesi = simulate(&p, &m, ProtocolId::Mesi);
    let warden = simulate(&p, &m, ProtocolId::Warden);
    assert_eq!(mesi.memory_image_digest, warden.memory_image_digest);
    let (lo, hi) = p.address_range;
    assert_eq!(
        warden.final_memory.first_difference(&p.memory, lo, hi - lo),
        None
    );
}

#[test]
fn different_value_races_stay_semantically_valid() {
    let (p, layout) = bfs_with_layout(512, 4, 32);
    p.check_invariants().unwrap();
    // Replay under both protocols and several steal schedules: the racing
    // parent claims may differ from the logical run, but every outcome must
    // be a valid BFS tree.
    for seed in [7u64, 8, 9] {
        let m = MachineConfig::dual_socket().with_cores(3).with_seed(seed);
        for proto in [ProtocolId::Mesi, ProtocolId::Warden] {
            let out = simulate(&p, &m, proto);
            validate_parents(
                &out.final_memory,
                layout.parent_base,
                &layout.offsets,
                &layout.targets,
            )
            .unwrap_or_else(|e| panic!("{proto} seed {seed}: {e}"));
        }
    }
}

#[test]
fn bfs_ward_scopes_cover_the_racing_writes() {
    let (p, _) = bfs_with_layout(512, 4, 32);
    assert!(
        p.stats.accesses_in_ward > 0,
        "the per-level parent scopes must be active during expansion"
    );
    // And WARDen actually exploits them.
    let m = MachineConfig::dual_socket().with_cores(4);
    let mesi = simulate(&p, &m, ProtocolId::Mesi);
    let warden = simulate(&p, &m, ProtocolId::Warden);
    assert!(warden.stats.coherence.ward_serves > 0);
    assert!(
        warden.stats.coherence.invalidations <= mesi.stats.coherence.invalidations,
        "racing parent writes should stop invalidating each other"
    );
}
