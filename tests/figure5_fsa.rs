//! Conformance tests for the paper's Figure 5: the WARDen directory FSA.
//!
//! Each test drives one edge (or path) of the simplified directory state
//! machine and asserts the exact sequence of directory states via the
//! transition log. Figure 5's states map onto the directory as: I =
//! `Uncached`, S = `Shared`, E/M = `Owned` (the E/M split lives in the
//! owner's private cache), W = `Ward`.

use warden::coherence::{
    CacheConfig, CoherenceSystem, DirKind, LatencyModel, ProtocolId, Topology,
};
use warden::mem::{Addr, PAGE_SIZE};

fn sys(protocol: ProtocolId) -> CoherenceSystem {
    let mut s = CoherenceSystem::new(
        Topology::new(2, 2),
        LatencyModel::xeon_gold_6126(),
        CacheConfig::paper(2),
        protocol,
    );
    s.enable_dir_log();
    s
}

fn page(n: u64) -> Addr {
    Addr(n * PAGE_SIZE)
}

use DirKind::{Owned, Shared, Uncached, Ward};

#[test]
fn gets_from_i_grants_exclusive() {
    // Figure 5: I --GetS--> E.
    let mut s = sys(ProtocolId::Mesi);
    let a = page(2);
    s.load(0, a, 8);
    assert_eq!(s.dir_history(a.block()), [Uncached, Owned]);
}

#[test]
fn getm_from_i_grants_modified() {
    // Figure 5: I --GetM--> M.
    let mut s = sys(ProtocolId::Mesi);
    let a = page(2);
    s.store(0, a, &[1]);
    assert_eq!(s.dir_history(a.block()), [Uncached, Owned]);
}

#[test]
fn gets_downgrades_owner_to_shared() {
    // Figure 5: E/M --GetS (non-WARD region)--> S, DG owner.
    let mut s = sys(ProtocolId::Mesi);
    let a = page(2);
    s.store(0, a, &[1]);
    s.load(1, a, 8);
    assert_eq!(s.dir_history(a.block()), [Uncached, Owned, Shared]);
    assert!(s.stats().downgrades > 0);
}

#[test]
fn getm_invalidates_sharers() {
    // Figure 5: S --GetM (non-WARD region)--> M, INV sharers.
    let mut s = sys(ProtocolId::Mesi);
    let a = page(2);
    s.load(0, a, 8);
    s.load(1, a, 8);
    s.store(2, a, &[1]);
    assert_eq!(s.dir_history(a.block()), [Uncached, Owned, Shared, Owned]);
    assert!(s.stats().invalidations > 0);
}

#[test]
fn getm_transfers_ownership_with_invalidation() {
    // Figure 5: M --GetM (non-WARD region)--> M at the new owner, INV owner.
    let mut s = sys(ProtocolId::Mesi);
    let a = page(2);
    s.store(0, a, &[1]);
    let inv_before = s.stats().invalidations;
    s.store(1, a, &[2]);
    // Directory stays Owned (ownership moved silently at dir-kind level).
    assert_eq!(s.dir_history(a.block()), [Uncached, Owned]);
    assert!(s.stats().invalidations > inv_before);
    assert_eq!(s.stats().fwd_getm, 1);
}

#[test]
fn ward_entry_from_i() {
    // Figure 5: I --GetM or GetS (WARD region)--> W.
    let mut s = sys(ProtocolId::Warden);
    let a = page(2);
    s.add_region(a, page(3)).unwrap();
    s.store(0, a, &[1]);
    assert_eq!(s.dir_history(a.block()), [Uncached, Ward]);
}

#[test]
fn ward_entry_from_owned_avoids_invalidation() {
    // Figure 5: E/M --GetM or GetS (WARD region)--> W (no INV/DG of the
    // owner; our sound entry performs one LLC snapshot instead).
    let mut s = sys(ProtocolId::Warden);
    let a = page(2);
    s.store(0, a, &[1]); // Owned before the region exists
    s.add_region(a, page(3)).unwrap();
    s.store(1, a, &[2]);
    assert_eq!(s.dir_history(a.block()), [Uncached, Owned, Ward]);
    assert_eq!(s.stats().invalidations, 0);
    assert_eq!(s.stats().downgrades, 0);
}

#[test]
fn ward_entry_from_shared() {
    // Figure 5: S --GetM or GetS (WARD region)--> W.
    let mut s = sys(ProtocolId::Warden);
    let a = page(2);
    s.load(0, a, 8);
    s.load(1, a, 8); // Shared
    s.add_region(a, page(3)).unwrap();
    s.store(2, a, &[1]);
    assert_eq!(s.dir_history(a.block()), [Uncached, Owned, Shared, Ward]);
    assert_eq!(s.stats().invalidations, 0);
}

#[test]
fn ward_state_absorbs_all_requests() {
    // Figure 5: W --GetM or GetS--> W (self loop, no negative consequences).
    let mut s = sys(ProtocolId::Warden);
    let a = page(2);
    s.add_region(a, page(3)).unwrap();
    s.store(0, a, &[1]);
    for core in 1..4 {
        s.load(core, a, 8);
        s.store(core, a + 8, &[core as u8]);
    }
    assert_eq!(s.dir_history(a.block()), [Uncached, Ward]);
    assert_eq!(s.stats().inv_plus_dg(), 0);
    // Each core's first touch is a W-state serve; its second access hits
    // the private ward copy and never reaches the directory.
    assert!(s.stats().ward_serves >= 4);
}

#[test]
fn reconciliation_exits_ward_to_mesi_states() {
    // §5.2 ("for transitions out of the WARD state"): multi-sharer blocks
    // merge and leave W; a single holder converts in place to a clean
    // shared copy.
    let mut s = sys(ProtocolId::Warden);
    let multi = page(2);
    let solo = page(2) + 64;
    let id = s.add_region(page(2), page(3)).unwrap();
    s.store(0, multi, &[1]);
    s.store(1, multi + 8, &[2]);
    s.store(0, solo, &[3]);
    s.remove_region(id);
    assert_eq!(
        s.dir_history(multi.block()),
        [Uncached, Ward, Uncached],
        "multi-holder W blocks merge and invalidate"
    );
    assert_eq!(
        s.dir_history(solo.block()),
        [Uncached, Ward, Shared],
        "no-sharing W blocks convert in place"
    );
}

#[test]
fn legacy_traffic_never_reaches_ward() {
    // Figure 1 / §5.1: with no regions declared, a WARDen machine walks only
    // MESI states.
    let mut s = sys(ProtocolId::Warden);
    let a = page(2);
    s.store(0, a, &[1]);
    s.load(1, a, 8);
    s.store(2, a, &[2]);
    let hist = s.dir_history(a.block());
    assert!(!hist.contains(&Ward), "history {hist:?}");
}

#[test]
fn rmw_escape_path_is_ward_then_uncached_then_owned() {
    let mut s = sys(ProtocolId::Warden);
    let a = page(2);
    s.add_region(a, page(3)).unwrap();
    s.store(0, a, &[1]);
    s.store(1, a, &[2]); // second ward copy
    s.rmw(2, a, &[3]); // escape: reconcile, then coherent GetM
    assert_eq!(s.dir_history(a.block()), [Uncached, Ward, Uncached, Owned]);
}
