//! Golden-stats snapshot tests: every PBBS benchmark at tiny scale, under
//! every registered protocol, must reproduce its committed statistics
//! exactly.
//!
//! The simulator is deterministic, so any drift in any counter — cycle
//! counts, hit rates, coherence events, reconciliation totals — is a
//! behaviour change that must be reviewed, not noise. A mismatch prints a
//! field-level diff (golden vs. measured, with the delta) instead of two
//! opaque blobs.
//!
//! To regenerate after an intentional change:
//!
//! ```console
//! $ UPDATE_GOLDENS=1 cargo test --test golden_stats
//! $ git diff tests/goldens/   # review every changed counter
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use warden::coherence::ProtocolId;
use warden::pbbs::{Bench, Scale};
use warden::sim::{simulate, MachineConfig};

fn goldens_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens")
}

fn render(fields: &[(String, u64)]) -> String {
    let mut s = String::new();
    for (n, v) in fields {
        writeln!(s, "{n} = {v}").unwrap();
    }
    s
}

fn parse(text: &str) -> BTreeMap<String, u64> {
    text.lines()
        .filter_map(|line| {
            let (n, v) = line.split_once(" = ")?;
            Some((n.to_string(), v.parse().ok()?))
        })
        .collect()
}

/// A readable field-level diff: changed counters with deltas, then any
/// fields present on only one side.
fn diff(golden: &BTreeMap<String, u64>, measured: &[(String, u64)]) -> String {
    let mut out = String::new();
    let measured_map: BTreeMap<&str, u64> =
        measured.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    for (n, v) in measured {
        match golden.get(n) {
            Some(want) if want != v => {
                let delta = *v as i128 - *want as i128;
                writeln!(out, "    {n}: golden {want}, measured {v} ({delta:+})").unwrap();
            }
            Some(_) => {}
            None => writeln!(out, "    {n}: not in golden (measured {v})").unwrap(),
        }
    }
    for (n, v) in golden {
        if !measured_map.contains_key(n.as_str()) {
            writeln!(out, "    {n}: only in golden ({v})").unwrap();
        }
    }
    out
}

#[test]
fn every_benchmark_matches_its_golden_stats() {
    let machine = MachineConfig::dual_socket().with_cores(4);
    let update = std::env::var("UPDATE_GOLDENS").as_deref() == Ok("1");
    let mut failures = Vec::new();
    let mut checked = 0;
    for bench in Bench::ALL {
        let program = bench.build(Scale::Tiny);
        for protocol in ProtocolId::ALL {
            let tag = protocol.name();
            let out = simulate(&program, &machine, protocol);
            let fields = out.stats.fields();
            let path = goldens_dir().join(format!("{}-{tag}.txt", bench.name()));
            let rendered = render(&fields);
            if update {
                std::fs::write(&path, &rendered)
                    .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
                checked += 1;
                continue;
            }
            let Ok(want_text) = std::fs::read_to_string(&path) else {
                failures.push(format!(
                    "  {}/{tag}: golden file {} missing — run \
                     `UPDATE_GOLDENS=1 cargo test --test golden_stats`",
                    bench.name(),
                    path.display()
                ));
                continue;
            };
            if want_text != rendered {
                failures.push(format!(
                    "  {}/{tag}:\n{}",
                    bench.name(),
                    diff(&parse(&want_text), &fields)
                ));
            }
            checked += 1;
        }
    }
    assert!(
        failures.is_empty(),
        "{} golden snapshot(s) diverged:\n{}",
        failures.len(),
        failures.join("\n")
    );
    assert_eq!(
        checked,
        Bench::ALL.len() * ProtocolId::ALL.len(),
        "expected every benchmark under every registered protocol"
    );
}
