//! Cross-protocol statistics-consistency checks: accounting identities
//! that must hold for every benchmark under every protocol, independent of
//! the golden snapshots. Where a golden test says "nothing changed", these
//! say "the books balance": accesses in equal accesses out, every access is
//! served at exactly one level, and the WARDen protocol never performs
//! *more* invalidation work than the MESI baseline on WARD-heavy traces.

use warden::coherence::ProtocolId;
use warden::pbbs::{Bench, Scale};
use warden::rt::summarize;
use warden::sim::{simulate, MachineConfig};

#[test]
fn coherence_accesses_match_the_trace_and_cache_levels_partition_them() {
    let machine = MachineConfig::dual_socket().with_cores(4);
    for bench in Bench::ALL {
        let program = bench.build(Scale::Tiny);
        let s = summarize(&program);
        let trace_ops = s.loads + s.stores + s.rmws;
        for protocol in ProtocolId::ALL {
            let out = simulate(&program, &machine, protocol);
            let c = &out.stats.coherence;
            assert_eq!(
                c.loads + c.stores + c.rmws,
                trace_ops,
                "{} under {protocol:?}: coherence engine saw {} accesses, \
                 trace contains {trace_ops}",
                bench.name(),
                c.loads + c.stores + c.rmws,
            );
            assert_eq!(
                out.stats.memory_accesses,
                c.accesses(),
                "{} under {protocol:?}: engine and coherence access counts differ",
                bench.name(),
            );
            // Every access is served at exactly one level; a stale-Ward
            // retry re-runs the LLC lookup, so retries appear once more on
            // the left side.
            assert_eq!(
                c.l1_hits + c.l2_hits + c.llc_hits + c.llc_misses,
                c.accesses() + c.ward_stale_retries,
                "{} under {protocol:?}: cache-level accounting does not \
                 partition the accesses",
                bench.name(),
            );
        }
    }
}

#[test]
fn warden_never_adds_invalidation_work_on_ward_heavy_traces() {
    // The W state exists to suppress coherence traffic, so:
    //  * downgrades can only shrink — on every benchmark (reads of a WARD
    //    block never downgrade the writer);
    //  * on WARD-heavy traces (the suite's largest Figure-9 reductions),
    //    invalidations shrink too and inv+dg shrinks strictly.
    // `primes` at tiny scale is deliberately not in the WARD-heavy set: its
    // declared flag regions need page-sized arrays (see suite_shapes.rs), so
    // the tiny input gets region churn without the benign-WAW savings.
    let machine = MachineConfig::dual_socket().with_cores(4);
    let ward_heavy = [
        Bench::MakeArray,
        Bench::Msort,
        Bench::SuffixArray,
        Bench::Tokens,
    ];
    for bench in Bench::ALL {
        let program = bench.build(Scale::Tiny);
        let mesi = simulate(&program, &machine, ProtocolId::Mesi);
        let warden = simulate(&program, &machine, ProtocolId::Warden);
        assert_eq!(
            mesi.memory_image_digest,
            warden.memory_image_digest,
            "{}: protocols disagree on the final memory image",
            bench.name()
        );
        let (m, w) = (&mesi.stats.coherence, &warden.stats.coherence);
        assert!(
            w.downgrades <= m.downgrades,
            "{}: WARDen performed more downgrades than MESI ({} > {})",
            bench.name(),
            w.downgrades,
            m.downgrades
        );
        if ward_heavy.contains(&bench) {
            assert!(
                w.invalidations <= m.invalidations,
                "{}: WARDen performed more invalidations than MESI on a \
                 WARD-heavy trace ({} > {})",
                bench.name(),
                w.invalidations,
                m.invalidations
            );
            assert!(
                w.inv_plus_dg() < m.inv_plus_dg(),
                "{}: a WARD-heavy benchmark must strictly reduce \
                 invalidation+downgrade work ({} vs {})",
                bench.name(),
                w.inv_plus_dg(),
                m.inv_plus_dg()
            );
        }
    }
}
