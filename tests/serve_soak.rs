//! End-to-end soak of `warden-serve`: an in-process server driven by
//! concurrent clients over real TCP sockets, held to the digest of a
//! directly computed [`warden::sim::simulate_with_options`] outcome —
//! bit-identical conformance, not approximate agreement. Also covered:
//! backpressure recovery without `Busy` leaks, typed oversized-frame
//! rejection on the wire, and a graceful drain that completes every
//! in-flight request.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};
use warden::bench::loadgen::{drive, Expectation, Target};
use warden::coherence::ProtocolId;
use warden::obs::validate_trace;
use warden::pbbs::{Bench, Scale};
use warden::serve::proto::{read_frame, write_frame, DEFAULT_MAX_FRAME};
use warden::serve::{
    outcome_digest, protocol_tag, CacheKey, Client, DiskTier, DiskTierConfig, FrameEvent,
    MachinePreset, MachineSpec, RealStorage, Request, ResilientClient, Response, RetryPolicy,
    ServeConfig, ServedFrom, Server, ServerOptions, SimRequest, StorageFaultPlan,
};
use warden::sim::checkpoint::options_fingerprint;
use warden::sim::{simulate_with_options, SimEngine, SimOptions};

/// A fresh scratch directory for one durability drill.
fn scratch_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("warden-soak-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Four benchmarks × both protocols on a small dual-socket machine: the
/// soak plan, with every expected digest computed directly.
fn plan() -> Vec<Expectation> {
    let machine = MachineSpec::new(MachinePreset::DualSocket).with_cores(2);
    let resolved = machine.to_machine().expect("valid machine");
    let mut plan = Vec::new();
    for bench in [Bench::Fib, Bench::MakeArray, Bench::Primes, Bench::Tokens] {
        let program = bench.build(Scale::Tiny);
        for protocol in [ProtocolId::Mesi, ProtocolId::Warden] {
            let out = simulate_with_options(&program, &resolved, protocol, &SimOptions::default());
            plan.push(Expectation {
                req: SimRequest {
                    bench,
                    scale: Scale::Tiny,
                    machine,
                    protocol,
                    check: false,
                },
                digest: outcome_digest(&out),
            });
        }
    }
    plan
}

#[test]
fn soak_concurrent_clients_conform_bit_for_bit() {
    let server = Server::start(ServeConfig {
        tcp: Some("127.0.0.1:0".to_string()),
        workers: 3,
        queue_cap: 32,
        record_trace: true,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.tcp_addr().expect("tcp bound").to_string();
    let plan = plan();

    // 8 clients × 8 requests, every response checked against the direct
    // simulation digest inside `drive`.
    let report = drive(&Target::Tcp(addr.clone()), &plan, 8, plan.len()).expect("conformance");
    assert_eq!(report.responses, 64);
    assert_eq!(report.mismatches, 0);
    assert!(
        report.cache_hits > 0,
        "64 requests over 8 unique keys must hit the cache"
    );

    // The cache-hit ratio is also visible through the wire metrics.
    let mut client = Client::connect(&addr).expect("connect");
    client.ping().expect("pong");
    let metrics = client.metrics().expect("metrics over the wire");
    let hits = metrics.counter("cache_hits").unwrap_or(0)
        + metrics.counter("cache_coalesced").unwrap_or(0);
    let misses = metrics.counter("cache_misses").unwrap_or(0);
    assert_eq!(misses, plan.len() as u64, "one simulation per unique key");
    assert!(hits > 0, "hit ratio must be positive");
    assert_eq!(metrics.counter("serve_internal_error"), Some(0));
    assert!(
        metrics.counter("serve_latency_us_why").is_none(),
        "sanity: absent counters read as None"
    );
    drop(client);

    let report = server.shutdown();
    assert_eq!(report.cache.failures, 0);
    // The recorded timeline is valid trace-event JSON with one slice per
    // completed simulation.
    let trace = report.trace_json.expect("recording was on");
    let stats = validate_trace(&trace).expect("timeline lints");
    assert_eq!(stats.complete, 64, "one slice per served simulation");
}

#[test]
fn backpressure_rejects_typed_then_recovers_without_leaks() {
    // One worker, a one-slot queue: concurrent distinct requests MUST see
    // Busy, and retrying MUST eventually serve all of them.
    let server = Server::start(ServeConfig {
        tcp: Some("127.0.0.1:0".to_string()),
        workers: 1,
        queue_cap: 1,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.tcp_addr().expect("tcp bound").to_string();

    // Distinct machines make distinct cache keys, so nothing coalesces and
    // the queue actually fills.
    let plan: Vec<Expectation> = [1u32, 2, 3, 4]
        .iter()
        .map(|&cores| {
            let machine = MachineSpec::new(MachinePreset::DualSocket).with_cores(cores);
            let resolved = machine.to_machine().unwrap();
            let program = Bench::Fib.build(Scale::Tiny);
            let out = simulate_with_options(
                &program,
                &resolved,
                ProtocolId::Warden,
                &SimOptions::default(),
            );
            Expectation {
                req: SimRequest {
                    bench: Bench::Fib,
                    scale: Scale::Tiny,
                    machine,
                    protocol: ProtocolId::Warden,
                    check: false,
                },
                digest: outcome_digest(&out),
            }
        })
        .collect();

    let report = drive(&Target::Tcp(addr.clone()), &plan, 8, 4).expect("all served eventually");
    assert_eq!(report.responses, 32);
    assert_eq!(report.mismatches, 0);

    // Recovery: the queue drained, so a fresh request must succeed with no
    // Busy on the first attempt — backpressure leaves no residue.
    let snapshot = server.metrics_snapshot();
    assert_eq!(snapshot.counter("serve_queue_depth_current"), Some(0));
    assert_eq!(snapshot.counter("serve_inflight_current"), Some(0));
    let busy_before = snapshot.counter("serve_busy").unwrap_or(0);
    let mut client = Client::connect(&addr).expect("connect");
    match client.call(&Request::Simulate(plan[0].req)).expect("call") {
        Response::Outcome { summary, served } => {
            assert_eq!(summary.outcome_digest, plan[0].digest);
            assert!(
                served.cache_hit(),
                "recovered server still has the cached result"
            );
        }
        other => panic!("expected an outcome after recovery, got {other:?}"),
    }
    let busy_after = server.metrics_snapshot().counter("serve_busy").unwrap_or(0);
    assert_eq!(busy_after, busy_before, "no Busy after recovery");
    drop(client);
    server.shutdown();
}

#[test]
fn oversized_frames_are_rejected_typed_on_the_wire() {
    let server = Server::start(ServeConfig {
        tcp: Some("127.0.0.1:0".to_string()),
        max_frame: 64,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.tcp_addr().expect("tcp bound").to_string();

    // Hand-craft a frame header promising a payload far over the cap; the
    // server must answer `TooLarge` without reading (or allocating) it.
    let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
    let mut raw = Vec::new();
    raw.extend_from_slice(b"WSRV");
    raw.push(warden::serve::proto::PROTO_VERSION);
    raw.extend_from_slice(&(1_000_000u32).to_le_bytes());
    stream.write_all(&raw).expect("header sent");
    // Read the reply directly — the server answers TooLarge and hangs up.
    match warden::serve::proto::read_frame(&mut stream, 1 << 20).expect("response frame") {
        warden::serve::FrameEvent::Frame(payload) => {
            match Response::decode(&payload).expect("typed response") {
                Response::TooLarge { len, max } => assert_eq!((len, max), (1_000_000, 64)),
                other => panic!("expected TooLarge, got {other:?}"),
            }
        }
        other => panic!("expected a response frame, got {other:?}"),
    }
    let report = server.shutdown();
    assert_eq!(report.metrics.counter("serve_too_large"), Some(1));
}

#[test]
fn graceful_drain_completes_every_inflight_request() {
    let server = Server::start(ServeConfig {
        tcp: Some("127.0.0.1:0".to_string()),
        workers: 1,
        queue_cap: 8,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.tcp_addr().expect("tcp bound").to_string();

    // Six requests with distinct cache keys funneled through ONE worker:
    // while the first simulates, the rest wait in the queue.
    let n = 6usize;
    let handles: Vec<_> = (0..n)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                let req = SimRequest {
                    bench: Bench::Fib,
                    scale: Scale::Tiny,
                    machine: MachineSpec::new(MachinePreset::ManySocket(i as u32 % 5 + 1))
                        .with_cores(2),
                    protocol: ProtocolId::Warden,
                    check: i >= 5,
                };
                client.call(&Request::Simulate(req)).expect("reply arrives")
            })
        })
        .collect();

    // Wait until all six are accepted (completed + queued + running == 6),
    // so none can be turned away by the drain flag — then shut down while
    // most still sit in the queue.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let m = server.metrics_snapshot();
        let completed = m.hist("serve_latency_us").map(|h| h.count()).unwrap_or(0);
        let queued = m.counter("serve_queue_depth_current").unwrap_or(0);
        let running = m.counter("serve_inflight_current").unwrap_or(0);
        if completed + queued + running == n as u64 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "requests never reached the server"
        );
        std::thread::sleep(Duration::from_micros(200));
    }
    let report = server.shutdown();

    // The drain completed every accepted request: each blocked client got a
    // real outcome, none were dropped or answered `Draining`.
    for h in handles {
        match h.join().expect("client thread") {
            Response::Outcome { .. } => {}
            other => panic!("in-flight request lost to the drain: {other:?}"),
        }
    }
    assert_eq!(report.metrics.counter("serve_draining"), Some(0));
    assert_eq!(
        report.metrics.hist("serve_latency_us").map(|h| h.count()),
        Some(n as u64)
    );

    // After the drain the port is released: a fresh server can bind it.
    let rebound = Server::start(ServeConfig {
        tcp: Some(addr),
        ..ServeConfig::default()
    })
    .expect("address is reusable after a clean drain");
    rebound.shutdown();
}

#[test]
fn deadline_drill_cancels_the_long_request_and_frees_the_worker() {
    // A deadline far below what a paper-scale msort replay on a four-socket
    // machine costs (hundreds of ms even in release builds, seconds in
    // debug), but comfortably above scheduler jitter.
    let deadline = Duration::from_millis(200);
    let server = Server::start(ServeConfig {
        tcp: Some("127.0.0.1:0".to_string()),
        workers: 1,
        queue_cap: 4,
        opts: ServerOptions {
            request_deadline: Some(deadline),
            ..ServerOptions::default()
        },
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.tcp_addr().expect("tcp bound").to_string();

    let long_req = SimRequest {
        bench: Bench::Msort,
        scale: Scale::Paper,
        machine: MachineSpec::new(MachinePreset::ManySocket(4)),
        protocol: ProtocolId::Mesi,
        check: true,
    };
    let mut client = Client::connect(&addr).expect("connect");
    let started = Instant::now();
    match client
        .call(&Request::Simulate(long_req))
        .expect("typed reply")
    {
        Response::DeadlineExceeded {
            deadline_ms,
            elapsed_ms,
        } => {
            assert_eq!(deadline_ms, deadline.as_millis() as u64);
            assert!(
                elapsed_ms >= deadline_ms,
                "the reply cannot predate its own deadline ({elapsed_ms} ms)"
            );
        }
        other => panic!("a paper-scale msort cannot finish inside {deadline:?}: {other:?}"),
    }
    let waited = started.elapsed();
    assert!(
        waited < deadline * 2,
        "the typed reply took {waited:?}, over twice the {deadline:?} deadline"
    );

    // The drill's second half: the worker becomes healthy again and serves
    // a real, correct outcome. Until it finishes tearing down the
    // cancelled replay, a quick request can itself expire in the queue
    // (its deadline covers queue wait too — by design), so retry; the
    // point under test is that the worker *recovers*, bounded below.
    let quick = SimRequest {
        bench: Bench::Fib,
        scale: Scale::Tiny,
        machine: MachineSpec::new(MachinePreset::DualSocket).with_cores(2),
        protocol: ProtocolId::Warden,
        check: false,
    };
    let program = Bench::Fib.build(Scale::Tiny);
    let resolved = quick.machine.to_machine().expect("valid machine");
    let direct = simulate_with_options(
        &program,
        &resolved,
        ProtocolId::Warden,
        &SimOptions::default(),
    );
    let recovery = Instant::now() + Duration::from_secs(60);
    loop {
        match client.call(&Request::Simulate(quick)).expect("reply") {
            Response::Outcome { summary, .. } => {
                assert_eq!(summary.outcome_digest, outcome_digest(&direct));
                break;
            }
            Response::DeadlineExceeded { .. } => {
                assert!(
                    Instant::now() < recovery,
                    "the worker never recovered from the cancellation"
                );
                std::thread::sleep(Duration::from_millis(25));
            }
            other => panic!("the worker must serve after a cancellation, got {other:?}"),
        }
    }
    drop(client);

    let report = server.shutdown();
    assert!(
        report
            .metrics
            .counter("serve_deadline_exceeded")
            .unwrap_or(0)
            >= 1,
        "the drill's long request must be counted"
    );
    assert!(
        report.cache.cancelled >= 1,
        "the expired flight must be torn down through the cancel token, \
         not simulated to completion: {:?}",
        report.cache
    );
    assert_eq!(
        report.cache.failures, 0,
        "cancellation is not a failure: {:?}",
        report.cache
    );
}

#[test]
fn slow_loris_connections_are_reclaimed_within_the_stall_bound() {
    let server = Server::start(ServeConfig {
        tcp: Some("127.0.0.1:0".to_string()),
        opts: ServerOptions {
            frame_stall: Duration::from_millis(200),
            ..ServerOptions::default()
        },
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.tcp_addr().expect("tcp bound").to_string();

    // Four connections each drip a few bytes of a frame, then go silent
    // while staying open — the classic slow loris.
    let loris: Vec<TcpStream> = (0..4usize)
        .map(|i| {
            let mut s = TcpStream::connect(&addr).expect("connect");
            s.write_all(&b"WSRV\x01"[..2 + i % 3]).expect("drip");
            s
        })
        .collect();

    // The stall bound (not the peers closing — they never do) must free
    // every slot. Generous wall deadline for loaded CI machines; the
    // per-connection bound under test is the 200 ms stall.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let m = server.metrics_snapshot();
        let stalled = m.counter("serve_stalled").unwrap_or(0);
        let live = m.counter("serve_conns_current").unwrap_or(u64::MAX);
        if stalled == 4 && live == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "slow-loris slots not reclaimed: {stalled} stalled, {live} still live"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // The server shut the drip-feeders down: their sockets read EOF (or a
    // reset), never a response frame.
    for mut s in loris {
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let mut sink = [0u8; 16];
        match s.read(&mut sink) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("a stalled connection got {n} bytes of response"),
        }
    }

    // And the listener still serves honest clients.
    let mut client = Client::connect(&addr).expect("connect");
    client.ping().expect("pong after the loris purge");
    drop(client);
    let report = server.shutdown();
    assert_eq!(report.metrics.counter("serve_stalled"), Some(4));
}

/// A proxy that tears the first response mid-header, then relays every
/// later connection faithfully — the deterministic core of the chaos
/// harness's torn-frame fault, used to pin retry-from-cache semantics.
fn tear_first_response_proxy(upstream: String) -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("proxy bind");
    let addr = listener.local_addr().expect("proxy addr");
    std::thread::spawn(move || {
        // Connection 1: forward the request, tear the response.
        if let Ok((mut conn, _)) = listener.accept() {
            let mut up = TcpStream::connect(&upstream).expect("upstream");
            if let Ok(FrameEvent::Frame(req)) = read_frame(&mut conn, DEFAULT_MAX_FRAME) {
                write_frame(&mut up, &req, DEFAULT_MAX_FRAME).expect("forward request");
                if let Ok(FrameEvent::Frame(_)) = read_frame(&mut up, DEFAULT_MAX_FRAME) {
                    // The server answered in full; the client gets five
                    // bytes of frame header and then a closed socket.
                    let _ = conn.write_all(b"WSRV\x02");
                }
            }
            // Dropping both sockets closes the torn connection.
        }
        // Connection 2 (the retry): relay frames faithfully until EOF.
        if let Ok((mut conn, _)) = listener.accept() {
            let mut up = TcpStream::connect(&upstream).expect("upstream");
            while let Ok(FrameEvent::Frame(req)) = read_frame(&mut conn, DEFAULT_MAX_FRAME) {
                write_frame(&mut up, &req, DEFAULT_MAX_FRAME).expect("forward request");
                match read_frame(&mut up, DEFAULT_MAX_FRAME) {
                    Ok(FrameEvent::Frame(resp)) => {
                        if write_frame(&mut conn, &resp, DEFAULT_MAX_FRAME).is_err() {
                            break;
                        }
                    }
                    _ => break,
                }
            }
        }
    });
    addr
}

#[test]
fn a_retried_request_is_served_from_cache_not_recomputed() {
    let server = Server::start(ServeConfig {
        tcp: Some("127.0.0.1:0".to_string()),
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.tcp_addr().expect("tcp bound").to_string();
    let proxy = tear_first_response_proxy(addr);

    let req = SimRequest {
        bench: Bench::Primes,
        scale: Scale::Tiny,
        machine: MachineSpec::new(MachinePreset::DualSocket).with_cores(2),
        protocol: ProtocolId::Warden,
        check: false,
    };
    let program = Bench::Primes.build(Scale::Tiny);
    let resolved = req.machine.to_machine().expect("valid machine");
    let direct = simulate_with_options(
        &program,
        &resolved,
        ProtocolId::Warden,
        &SimOptions::default(),
    );

    let mut client = ResilientClient::tcp(
        proxy.to_string(),
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(50),
            call_deadline: Some(Duration::from_secs(30)),
            frame_stall: Duration::from_millis(500),
            seed: 11,
        },
    )
    .expect("valid retry policy");
    let (summary, served) = client.simulate(req).expect("the retry must succeed");

    // The conformance core: the first attempt's computation was completed
    // and cached by the server even though its response was torn on the
    // wire, so the safe re-issue is answered from cache — same digest,
    // zero recomputation.
    assert_eq!(summary.outcome_digest, outcome_digest(&direct));
    assert!(
        served.cache_hit(),
        "the retried request must be served from cache"
    );
    assert_eq!(client.retries(), 1, "exactly one retry absorbed the tear");
    assert_eq!(client.reconnects(), 2, "initial dial plus one re-dial");

    let report = server.shutdown();
    assert_eq!(report.cache.misses, 1, "one simulation, not two");
    assert_eq!(report.cache.hits, 1, "the retry was a cache hit");
    assert_eq!(report.metrics.counter("serve_simulate"), Some(2));
}

#[test]
fn restart_warm_serves_bit_identically_from_disk_without_resimulating() {
    let dir = scratch_dir("restart-warm");
    let plan = plan();

    // Cold process: every unique key is simulated once and persisted.
    let server = Server::start(ServeConfig {
        tcp: Some("127.0.0.1:0".to_string()),
        workers: 2,
        disk: Some(DiskTierConfig::at(&dir)),
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.tcp_addr().expect("tcp bound").to_string();
    let report = drive(&Target::Tcp(addr), &plan, 2, plan.len()).expect("cold conformance");
    assert_eq!(report.mismatches, 0);
    assert_eq!(report.served.full_sim.count, plan.len() as u64);
    let down = server.shutdown();
    let disk = down.disk.expect("disk tier enabled");
    assert!(
        disk.writes >= plan.len() as u64,
        "every result must be persisted: {disk:?}"
    );

    // "Restarted" process on the same directory: the same mix must be
    // served bit-identically (drive checks every digest against the
    // oracle) with ZERO re-simulations — each unique key warms from disk
    // once, repeats hit memory.
    let server = Server::start(ServeConfig {
        tcp: Some("127.0.0.1:0".to_string()),
        workers: 2,
        disk: Some(DiskTierConfig::at(&dir)),
        ..ServeConfig::default()
    })
    .expect("server restarts on the populated directory");
    let addr = server.tcp_addr().expect("tcp bound").to_string();
    let report = drive(&Target::Tcp(addr), &plan, 2, plan.len()).expect("warm conformance");
    assert_eq!(report.mismatches, 0);
    assert_eq!(
        report.served.full_sim.count, 0,
        "a warm restart must not re-simulate: {:?}",
        report.served
    );
    assert_eq!(report.served.prefix_resume.count, 0);
    assert_eq!(
        report.served.disk_hit.count,
        plan.len() as u64,
        "one disk warm-up per unique key"
    );
    let down = server.shutdown();
    assert_eq!(down.metrics.counter("serve_full_sims"), Some(0));
    assert_eq!(
        down.metrics.counter("disk_hits"),
        Some(plan.len() as u64),
        "the wire metrics agree with the client-side split"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_prefix_sharing_request_resumes_from_a_persisted_checkpoint() {
    let dir = scratch_dir("prefix-resume");
    let req = SimRequest {
        bench: Bench::Tokens,
        scale: Scale::Tiny,
        machine: MachineSpec::new(MachinePreset::DualSocket).with_cores(2),
        protocol: ProtocolId::Warden,
        check: false,
    };
    let program = Bench::Tokens.build(Scale::Tiny);
    let resolved = req.machine.to_machine().expect("valid machine");
    let opts = SimOptions::default();
    let direct = simulate_with_options(&program, &resolved, ProtocolId::Warden, &opts);

    // Run a prefix of the same replay directly and persist its frame
    // through the tier — byte-for-byte what an interrupted leader leaves
    // behind (the serving path's options differ only by the cancel token,
    // which the options fingerprint deliberately excludes).
    let mut eng =
        SimEngine::try_new(&program, &resolved, ProtocolId::Warden, &opts).expect("engine");
    for _ in 0..500 {
        if !eng.step() {
            break;
        }
    }
    let steps = eng.steps();
    let frame = eng.snapshot_to_bytes();
    let key = CacheKey {
        options_fp: options_fingerprint(&opts),
        trace_fp: program.fingerprint(),
        machine_fp: resolved.fingerprint(),
        protocol: protocol_tag(ProtocolId::Warden),
    };
    {
        let tier =
            DiskTier::open(DiskTierConfig::at(&dir), Arc::new(RealStorage)).expect("tier opens");
        tier.put_checkpoint(&key, steps, &frame);
        assert_eq!(tier.stats().checkpoints_written, 1);
    }

    let server = Server::start(ServeConfig {
        tcp: Some("127.0.0.1:0".to_string()),
        disk: Some(DiskTierConfig::at(&dir)),
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.tcp_addr().expect("tcp bound").to_string();
    let mut client = Client::connect(&addr).expect("connect");
    match client.call(&Request::Simulate(req)).expect("reply") {
        Response::Outcome { summary, served } => {
            assert_eq!(
                summary.outcome_digest,
                outcome_digest(&direct),
                "a resumed run must land on the full run's digest"
            );
            assert_eq!(served, ServedFrom::Resumed, "provenance is on the wire");
        }
        other => panic!("expected an outcome, got {other:?}"),
    }
    drop(client);
    let report = server.shutdown();
    assert_eq!(report.metrics.counter("resume_from_checkpoint"), Some(1));
    assert_eq!(
        report.metrics.counter("serve_full_sims"),
        Some(0),
        "the checkpoint spared the from-scratch replay"
    );
    let disk = report.disk.expect("disk tier enabled");
    assert_eq!(disk.checkpoint_hits, 1, "{disk:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_full_disk_degrades_to_memory_serving_and_never_fails_a_request() {
    let dir = scratch_dir("enospc");
    let plan = plan();
    let server = Server::start(ServeConfig {
        tcp: Some("127.0.0.1:0".to_string()),
        workers: 2,
        disk: Some(DiskTierConfig::at(&dir)),
        storage_faults: Some(StorageFaultPlan {
            torn_write_prob: 0.0,
            enospc_prob: 1.0,
            corrupt_read_prob: 0.0,
            crash_before_rename_prob: 0.0,
            crash_after_rename_prob: 0.0,
            ..StorageFaultPlan::default()
        }),
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.tcp_addr().expect("tcp bound").to_string();

    // Every write hits ENOSPC, yet every request is answered correctly:
    // the memory cache and recompute carry the load.
    let report = drive(&Target::Tcp(addr), &plan, 4, plan.len()).expect("no failed requests");
    assert_eq!(report.mismatches, 0);
    assert_eq!(report.responses, 4 * plan.len() as u64);

    let down = server.shutdown();
    assert_eq!(down.metrics.counter("serve_internal_error"), Some(0));
    let disk = down.disk.expect("disk tier enabled");
    assert_eq!(disk.writes, 0, "nothing lands on a full disk: {disk:?}");
    assert_eq!(
        disk.enospc_degraded,
        plan.len() as u64,
        "each unique key's persist attempt degraded, typed: {disk:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_disk_entries_are_quarantined_and_recomputed_never_served() {
    let dir = scratch_dir("quarantine");
    let exp = plan().remove(0);

    // Populate one result entry.
    let server = Server::start(ServeConfig {
        tcp: Some("127.0.0.1:0".to_string()),
        disk: Some(DiskTierConfig::at(&dir)),
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.tcp_addr().expect("tcp bound").to_string();
    let mut client = Client::connect(&addr).expect("connect");
    match client.call(&Request::Simulate(exp.req)).expect("reply") {
        Response::Outcome { summary, .. } => assert_eq!(summary.outcome_digest, exp.digest),
        other => panic!("expected an outcome, got {other:?}"),
    }
    drop(client);
    server.shutdown();

    // Flip one byte in the middle of every persisted entry.
    let mut flipped = 0usize;
    for entry in std::fs::read_dir(&dir).expect("read dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "ent") {
            let mut bytes = std::fs::read(&path).expect("entry bytes");
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xFF;
            std::fs::write(&path, &bytes).expect("corrupt entry");
            flipped += 1;
        }
    }
    assert!(
        flipped > 0,
        "the first server must have persisted its result"
    );

    // Restart: fsck sets the damage aside (never panics, never trusts
    // it), and the request is recomputed from scratch — still correct.
    let server = Server::start(ServeConfig {
        tcp: Some("127.0.0.1:0".to_string()),
        disk: Some(DiskTierConfig::at(&dir)),
        ..ServeConfig::default()
    })
    .expect("fsck never refuses to start over damage");
    let addr = server.tcp_addr().expect("tcp bound").to_string();
    let mut client = Client::connect(&addr).expect("connect");
    match client.call(&Request::Simulate(exp.req)).expect("reply") {
        Response::Outcome { summary, served } => {
            assert_eq!(summary.outcome_digest, exp.digest);
            assert_eq!(served, ServedFrom::Fresh, "corrupt bytes are never served");
        }
        other => panic!("expected an outcome, got {other:?}"),
    }
    drop(client);
    let report = server.shutdown();
    let disk = report.disk.expect("disk tier enabled");
    assert!(disk.quarantined >= 1, "fsck counted the damage: {disk:?}");
    assert_eq!(disk.hits, 0, "a quarantined entry cannot hit: {disk:?}");
    let evidence = std::fs::read_dir(dir.join("quarantine"))
        .expect("quarantine dir")
        .count();
    assert!(
        evidence >= 1,
        "the damaged entry was set aside, not deleted"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
