//! End-to-end soak of `warden-serve`: an in-process server driven by
//! concurrent clients over real TCP sockets, held to the digest of a
//! directly computed [`warden::sim::simulate_with_options`] outcome —
//! bit-identical conformance, not approximate agreement. Also covered:
//! backpressure recovery without `Busy` leaks, typed oversized-frame
//! rejection on the wire, and a graceful drain that completes every
//! in-flight request.

use std::io::Write;
use std::time::{Duration, Instant};
use warden::bench::loadgen::{drive, Expectation, Target};
use warden::coherence::Protocol;
use warden::obs::validate_trace;
use warden::pbbs::{Bench, Scale};
use warden::serve::{
    outcome_digest, Client, MachinePreset, MachineSpec, Request, Response, ServeConfig, Server,
    SimRequest,
};
use warden::sim::{simulate_with_options, SimOptions};

/// Four benchmarks × both protocols on a small dual-socket machine: the
/// soak plan, with every expected digest computed directly.
fn plan() -> Vec<Expectation> {
    let machine = MachineSpec::new(MachinePreset::DualSocket).with_cores(2);
    let resolved = machine.to_machine().expect("valid machine");
    let mut plan = Vec::new();
    for bench in [Bench::Fib, Bench::MakeArray, Bench::Primes, Bench::Tokens] {
        let program = bench.build(Scale::Tiny);
        for protocol in [Protocol::Mesi, Protocol::Warden] {
            let out = simulate_with_options(&program, &resolved, protocol, &SimOptions::default());
            plan.push(Expectation {
                req: SimRequest {
                    bench,
                    scale: Scale::Tiny,
                    machine,
                    protocol,
                    check: false,
                },
                digest: outcome_digest(&out),
            });
        }
    }
    plan
}

#[test]
fn soak_concurrent_clients_conform_bit_for_bit() {
    let server = Server::start(ServeConfig {
        tcp: Some("127.0.0.1:0".to_string()),
        workers: 3,
        queue_cap: 32,
        record_trace: true,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.tcp_addr().expect("tcp bound").to_string();
    let plan = plan();

    // 8 clients × 8 requests, every response checked against the direct
    // simulation digest inside `drive`.
    let report = drive(&Target::Tcp(addr.clone()), &plan, 8, plan.len()).expect("conformance");
    assert_eq!(report.responses, 64);
    assert_eq!(report.mismatches, 0);
    assert!(
        report.cache_hits > 0,
        "64 requests over 8 unique keys must hit the cache"
    );

    // The cache-hit ratio is also visible through the wire metrics.
    let mut client = Client::connect(&addr).expect("connect");
    client.ping().expect("pong");
    let metrics = client.metrics().expect("metrics over the wire");
    let hits = metrics.counter("cache_hits").unwrap_or(0)
        + metrics.counter("cache_coalesced").unwrap_or(0);
    let misses = metrics.counter("cache_misses").unwrap_or(0);
    assert_eq!(misses, plan.len() as u64, "one simulation per unique key");
    assert!(hits > 0, "hit ratio must be positive");
    assert_eq!(metrics.counter("serve_internal_error"), Some(0));
    assert!(
        metrics.counter("serve_latency_us_why").is_none(),
        "sanity: absent counters read as None"
    );
    drop(client);

    let report = server.shutdown();
    assert_eq!(report.cache.failures, 0);
    // The recorded timeline is valid trace-event JSON with one slice per
    // completed simulation.
    let trace = report.trace_json.expect("recording was on");
    let stats = validate_trace(&trace).expect("timeline lints");
    assert_eq!(stats.complete, 64, "one slice per served simulation");
}

#[test]
fn backpressure_rejects_typed_then_recovers_without_leaks() {
    // One worker, a one-slot queue: concurrent distinct requests MUST see
    // Busy, and retrying MUST eventually serve all of them.
    let server = Server::start(ServeConfig {
        tcp: Some("127.0.0.1:0".to_string()),
        workers: 1,
        queue_cap: 1,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.tcp_addr().expect("tcp bound").to_string();

    // Distinct machines make distinct cache keys, so nothing coalesces and
    // the queue actually fills.
    let plan: Vec<Expectation> = [1u32, 2, 3, 4]
        .iter()
        .map(|&cores| {
            let machine = MachineSpec::new(MachinePreset::DualSocket).with_cores(cores);
            let resolved = machine.to_machine().unwrap();
            let program = Bench::Fib.build(Scale::Tiny);
            let out = simulate_with_options(
                &program,
                &resolved,
                Protocol::Warden,
                &SimOptions::default(),
            );
            Expectation {
                req: SimRequest {
                    bench: Bench::Fib,
                    scale: Scale::Tiny,
                    machine,
                    protocol: Protocol::Warden,
                    check: false,
                },
                digest: outcome_digest(&out),
            }
        })
        .collect();

    let report = drive(&Target::Tcp(addr.clone()), &plan, 8, 4).expect("all served eventually");
    assert_eq!(report.responses, 32);
    assert_eq!(report.mismatches, 0);

    // Recovery: the queue drained, so a fresh request must succeed with no
    // Busy on the first attempt — backpressure leaves no residue.
    let snapshot = server.metrics_snapshot();
    assert_eq!(snapshot.counter("serve_queue_depth_current"), Some(0));
    assert_eq!(snapshot.counter("serve_inflight_current"), Some(0));
    let busy_before = snapshot.counter("serve_busy").unwrap_or(0);
    let mut client = Client::connect(&addr).expect("connect");
    match client.call(&Request::Simulate(plan[0].req)).expect("call") {
        Response::Outcome { summary, cache_hit } => {
            assert_eq!(summary.outcome_digest, plan[0].digest);
            assert!(cache_hit, "recovered server still has the cached result");
        }
        other => panic!("expected an outcome after recovery, got {other:?}"),
    }
    let busy_after = server.metrics_snapshot().counter("serve_busy").unwrap_or(0);
    assert_eq!(busy_after, busy_before, "no Busy after recovery");
    drop(client);
    server.shutdown();
}

#[test]
fn oversized_frames_are_rejected_typed_on_the_wire() {
    let server = Server::start(ServeConfig {
        tcp: Some("127.0.0.1:0".to_string()),
        max_frame: 64,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.tcp_addr().expect("tcp bound").to_string();

    // Hand-craft a frame header promising a payload far over the cap; the
    // server must answer `TooLarge` without reading (or allocating) it.
    let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
    let mut raw = Vec::new();
    raw.extend_from_slice(b"WSRV");
    raw.push(1);
    raw.extend_from_slice(&(1_000_000u32).to_le_bytes());
    stream.write_all(&raw).expect("header sent");
    // Read the reply directly — the server answers TooLarge and hangs up.
    match warden::serve::proto::read_frame(&mut stream, 1 << 20).expect("response frame") {
        warden::serve::FrameEvent::Frame(payload) => {
            match Response::decode(&payload).expect("typed response") {
                Response::TooLarge { len, max } => assert_eq!((len, max), (1_000_000, 64)),
                other => panic!("expected TooLarge, got {other:?}"),
            }
        }
        other => panic!("expected a response frame, got {other:?}"),
    }
    let report = server.shutdown();
    assert_eq!(report.metrics.counter("serve_too_large"), Some(1));
}

#[test]
fn graceful_drain_completes_every_inflight_request() {
    let server = Server::start(ServeConfig {
        tcp: Some("127.0.0.1:0".to_string()),
        workers: 1,
        queue_cap: 8,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.tcp_addr().expect("tcp bound").to_string();

    // Six requests with distinct cache keys funneled through ONE worker:
    // while the first simulates, the rest wait in the queue.
    let n = 6usize;
    let handles: Vec<_> = (0..n)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                let req = SimRequest {
                    bench: Bench::Fib,
                    scale: Scale::Tiny,
                    machine: MachineSpec::new(MachinePreset::ManySocket(i as u32 % 5 + 1))
                        .with_cores(2),
                    protocol: Protocol::Warden,
                    check: i >= 5,
                };
                client.call(&Request::Simulate(req)).expect("reply arrives")
            })
        })
        .collect();

    // Wait until all six are accepted (completed + queued + running == 6),
    // so none can be turned away by the drain flag — then shut down while
    // most still sit in the queue.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let m = server.metrics_snapshot();
        let completed = m.hist("serve_latency_us").map(|h| h.count()).unwrap_or(0);
        let queued = m.counter("serve_queue_depth_current").unwrap_or(0);
        let running = m.counter("serve_inflight_current").unwrap_or(0);
        if completed + queued + running == n as u64 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "requests never reached the server"
        );
        std::thread::sleep(Duration::from_micros(200));
    }
    let report = server.shutdown();

    // The drain completed every accepted request: each blocked client got a
    // real outcome, none were dropped or answered `Draining`.
    for h in handles {
        match h.join().expect("client thread") {
            Response::Outcome { .. } => {}
            other => panic!("in-flight request lost to the drain: {other:?}"),
        }
    }
    assert_eq!(report.metrics.counter("serve_draining"), Some(0));
    assert_eq!(
        report.metrics.hist("serve_latency_us").map(|h| h.count()),
        Some(n as u64)
    );

    // After the drain the port is released: a fresh server can bind it.
    let rebound = Server::start(ServeConfig {
        tcp: Some(addr),
        ..ServeConfig::default()
    })
    .expect("address is reusable after a clean drain");
    rebound.shutdown();
}
