//! Property tests of the coherence engine: under arbitrary interleavings of
//! per-core accesses and WARD region lifetimes, the final memory image must
//! equal a flat reference log — as long as each byte has a single writer
//! (the no-cross-RAW/WAW-free case every protocol must get exactly right).

use proptest::prelude::*;
use warden::coherence::{CacheConfig, CoherenceSystem, LatencyModel, ProtocolId, Topology};
use warden::mem::{Addr, Memory, PAGE_SIZE};

/// One scripted step.
#[derive(Clone, Debug)]
enum Step {
    /// `core` writes its own byte lane of a (possibly false-shared) word.
    Write { core: usize, slot: u64, val: u8 },
    /// `core` reads a slot (no semantic effect; exercises sharing states).
    Read { core: usize, slot: u64 },
    /// Toggle a WARD region over one of the pages.
    Region { page: u64 },
    /// A sync point on `core` — drains the private hierarchy under
    /// self-invalidation, a no-op under the eager protocols.
    Sync { core: usize },
}

const CORES: usize = 4;
const PAGES: u64 = 3;
const SLOTS: u64 = 64; // slots per page, each 64 B apart

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..CORES, 0..PAGES * SLOTS, any::<u8>()).prop_map(|(core, slot, val)| Step::Write {
            core,
            slot,
            val
        }),
        (0..CORES, 0..PAGES * SLOTS).prop_map(|(core, slot)| Step::Read { core, slot }),
        (0..PAGES).prop_map(|page| Step::Region { page }),
        (0..CORES).prop_map(|core| Step::Sync { core }),
    ]
}

/// The byte address core `core` owns within `slot`'s block: distinct cores
/// write distinct bytes of the *same* block — maximal false sharing.
fn lane(slot: u64, core: usize) -> Addr {
    Addr(PAGE_SIZE + slot * 64 + core as u64)
}

fn run(protocol: ProtocolId, steps: &[Step]) -> (Memory, Memory) {
    let mut sys = CoherenceSystem::new(
        Topology::new(2, 2),
        LatencyModel::xeon_gold_6126(),
        CacheConfig::tiny(), // tiny caches: constant evictions stress merging
        protocol,
    );
    // Checker and observability stay on for every random trace: the
    // invariants must hold mid-stream and event classification must never
    // panic on any protocol's event mix.
    sys.enable_checker();
    sys.enable_obs();
    let mut events = Vec::new();
    let mut reference = Memory::new();
    let mut region_ids = vec![None; PAGES as usize];
    for step in steps {
        match *step {
            Step::Write { core, slot, val } => {
                let a = lane(slot, core);
                sys.store(core, a, &[val]);
                reference.write_u8(a, val);
            }
            Step::Read { core, slot } => {
                sys.load(core, lane(slot, core), 1);
            }
            Step::Region { page } => {
                let idx = page as usize;
                match region_ids[idx].take() {
                    Some(id) => {
                        sys.remove_region(id);
                    }
                    None => {
                        let start = Addr((1 + page) * PAGE_SIZE);
                        region_ids[idx] = sys.add_region(start, Addr(start.0 + PAGE_SIZE));
                    }
                }
            }
            Step::Sync { core } => {
                sys.task_sync(core);
            }
        }
    }
    sys.drain_events(&mut events);
    for ev in &events {
        let _ = sys.classify_event(ev).name();
    }
    assert!(
        sys.violations().is_empty(),
        "{protocol}: invariant violation on a single-writer trace: {}",
        sys.violations()[0]
    );
    sys.flush_all();
    (sys.memory().clone(), reference)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mesi_matches_reference(steps in proptest::collection::vec(step_strategy(), 1..300)) {
        let (mem, reference) = run(ProtocolId::Mesi, &steps);
        prop_assert_eq!(
            mem.first_difference(&reference, Addr(PAGE_SIZE), PAGES * PAGE_SIZE),
            None
        );
    }

    #[test]
    fn warden_matches_reference(steps in proptest::collection::vec(step_strategy(), 1..300)) {
        let (mem, reference) = run(ProtocolId::Warden, &steps);
        prop_assert_eq!(
            mem.first_difference(&reference, Addr(PAGE_SIZE), PAGES * PAGE_SIZE),
            None
        );
    }

    #[test]
    fn every_protocol_matches_reference(steps in proptest::collection::vec(step_strategy(), 1..200)) {
        for protocol in ProtocolId::ALL {
            let (mem, reference) = run(protocol, &steps);
            prop_assert_eq!(
                mem.first_difference(&reference, Addr(PAGE_SIZE), PAGES * PAGE_SIZE),
                None,
                "{} diverged from the flat reference log", protocol
            );
        }
    }

    #[test]
    fn protocols_agree(steps in proptest::collection::vec(step_strategy(), 1..300)) {
        let (mesi, _) = run(ProtocolId::Mesi, &steps);
        for &protocol in &ProtocolId::ALL {
            if protocol == ProtocolId::Mesi {
                continue;
            }
            let (other, _) = run(protocol, &steps);
            prop_assert_eq!(mesi.digest(), other.digest(), "MESI vs {}", protocol);
        }
    }

    #[test]
    fn latencies_are_sane(steps in proptest::collection::vec(step_strategy(), 1..100)) {
        // Every access latency is at least an L1 hit and bounded by a
        // couple of worst-case chains.
        let mut sys = CoherenceSystem::new(
            Topology::new(2, 2),
            LatencyModel::xeon_gold_6126(),
            CacheConfig::tiny(),
            ProtocolId::Warden,
        );
        let lat = sys.latency_model();
        let bound = 4 * (lat.l3 + lat.fwd + 2 * lat.intersocket + lat.dram);
        for step in &steps {
            if let Step::Write { core, slot, val } = *step {
                let t = sys.store(core, lane(slot, core), &[val]);
                prop_assert!(t >= lat.l1 && t <= bound, "store latency {t}");
            }
        }
    }
}
