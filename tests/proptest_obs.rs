//! Property tests of the observability codecs: every randomly generated
//! protocol event, timed event, metrics registry, and report must survive
//! encode→decode exactly, and every strict prefix of an encoding must fail
//! with a typed error — never panic, never silently decode to a different
//! value. Plus unit tests pinning the log2 histogram's bucket boundaries.

use proptest::prelude::*;
use warden::coherence::{DirKind, ProtocolEvent};
use warden::mem::codec::{Decoder, Encoder};
use warden::mem::{Addr, BlockAddr};
use warden::obs::{Hist, MetricsRegistry, SpanSet};
use warden::sim::{EpochSummary, ObsReport, RegionSpan, SimEvent, TimedEvent};

fn dir_kind() -> impl Strategy<Value = DirKind> {
    prop_oneof![
        Just(DirKind::Uncached),
        Just(DirKind::Shared),
        Just(DirKind::Owned),
        Just(DirKind::Ward),
    ]
}

fn protocol_event() -> impl Strategy<Value = ProtocolEvent> {
    prop_oneof![
        (0usize..64, any::<u64>(), dir_kind(), any::<bool>()).prop_map(
            |(core, block, dir, ward)| ProtocolEvent::GetS {
                core,
                block: BlockAddr(block),
                dir,
                ward,
            }
        ),
        (
            0usize..64,
            any::<u64>(),
            dir_kind(),
            any::<bool>(),
            any::<bool>()
        )
            .prop_map(|(core, block, dir, ward, upgrade)| ProtocolEvent::GetM {
                core,
                block: BlockAddr(block),
                dir,
                ward,
                upgrade,
            }),
        (any::<u64>(), 0usize..64).prop_map(|(block, owner)| ProtocolEvent::WardEntrySync {
            block: BlockAddr(block),
            owner,
        }),
        (0usize..64, any::<u64>()).prop_map(|(core, block)| ProtocolEvent::RmwEscape {
            core,
            block: BlockAddr(block),
        }),
        (any::<u64>(), any::<u32>(), any::<u32>(), any::<u32>()).prop_map(
            |(block, holders, writebacks, drops)| ProtocolEvent::Reconcile {
                block: BlockAddr(block),
                holders,
                writebacks,
                drops,
            }
        ),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(id, start, end)| {
            ProtocolEvent::RegionAdd {
                id,
                start: Addr(start),
                end: Addr(end),
            }
        }),
        (any::<u64>(), any::<u64>()).prop_map(|(start, end)| ProtocolEvent::RegionOverflow {
            start: Addr(start),
            end: Addr(end),
        }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(id, blocks)| ProtocolEvent::RegionRemove { id, blocks }),
        (0usize..64, any::<u64>(), any::<bool>()).prop_map(|(core, block, writeback)| {
            ProtocolEvent::PrivEviction {
                core,
                block: BlockAddr(block),
                writeback,
            }
        }),
        (any::<u64>(), any::<bool>()).prop_map(|(block, writeback)| ProtocolEvent::LlcEviction {
            block: BlockAddr(block),
            writeback,
        }),
    ]
}

fn sim_event() -> impl Strategy<Value = SimEvent> {
    prop_oneof![
        protocol_event().prop_map(SimEvent::Protocol),
        (0usize..256, any::<u64>())
            .prop_map(|(core, cycles)| SimEvent::FaultStall { core, cycles }),
        Just(SimEvent::CheckpointFrame),
    ]
}

/// Encode, decode, require equality and no trailing bytes, then require
/// every strict prefix to fail with a typed error.
fn assert_roundtrip_and_prefixes<T: PartialEq + std::fmt::Debug>(
    value: &T,
    encode: impl Fn(&T, &mut Encoder),
    decode: impl Fn(&mut Decoder<'_>) -> Result<T, warden::mem::codec::CodecError>,
) {
    let mut enc = Encoder::new();
    encode(value, &mut enc);
    let bytes = enc.into_bytes();
    let mut dec = Decoder::new(&bytes);
    let back = decode(&mut dec).expect("full encoding decodes");
    dec.finish().expect("no trailing bytes");
    assert_eq!(&back, value);
    for cut in 0..bytes.len() {
        let mut dec = Decoder::new(&bytes[..cut]);
        // Some prefixes decode a structurally complete value early; those
        // must then fail the no-trailing/finish contract instead.
        if let Ok(early) = decode(&mut dec) {
            assert_eq!(
                &early, value,
                "prefix of {cut} bytes decoded a different value"
            );
            panic!(
                "strict prefix ({cut} of {} bytes) decoded fully",
                bytes.len()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sim_events_roundtrip_and_reject_prefixes(ev in sim_event()) {
        assert_roundtrip_and_prefixes(&ev, SimEvent::encode_into, SimEvent::decode_from);
    }

    #[test]
    fn timed_events_roundtrip_and_reject_prefixes(
        cycle in any::<u64>(),
        core in 0usize..512,
        ev in sim_event(),
    ) {
        let t = TimedEvent { cycle, core, event: ev };
        assert_roundtrip_and_prefixes(&t, TimedEvent::encode_into, TimedEvent::decode_from);
    }

    #[test]
    fn metrics_registries_roundtrip_and_reject_prefixes(
        counters in proptest::collection::vec(any::<u64>(), 0..8),
        samples in proptest::collection::vec(any::<u64>(), 0..32),
    ) {
        let mut reg = MetricsRegistry::new();
        for (i, v) in counters.iter().enumerate() {
            reg.set_counter(&format!("counter.{i}"), *v);
        }
        let mut h = Hist::new();
        for v in &samples {
            h.add(*v);
        }
        reg.set_hist("samples", h);
        assert_roundtrip_and_prefixes(
            &reg,
            MetricsRegistry::encode_into,
            MetricsRegistry::decode_from,
        );
    }

    #[test]
    fn reports_roundtrip_and_reject_prefixes(
        shift in 0u32..24,
        events in proptest::collection::vec((any::<u64>(), 0usize..8, sim_event()), 0..12),
        epochs in proptest::collection::vec(any::<u64>(), 0..6),
        dropped in any::<u64>(),
    ) {
        let mut metrics = MetricsRegistry::new();
        metrics.set_counter("timeline.events", events.len() as u64);
        let mut rep = ObsReport {
            epoch_shift: shift,
            metrics,
            epochs: epochs
                .iter()
                .map(|&n| EpochSummary { events: n, ..EpochSummary::default() })
                .collect(),
            timeline: events
                .iter()
                .map(|&(cycle, core, event)| TimedEvent { cycle, core, event })
                .collect(),
            region_spans: Vec::new(),
            dropped_events: dropped,
            spans: SpanSet::default(),
        };
        for (i, &(cycle, _, _)) in events.iter().enumerate() {
            rep.region_spans.push(RegionSpan {
                id: i as u64,
                birth: cycle,
                death: cycle.saturating_add(i as u64),
                blocks: i as u64,
            });
        }
        assert_roundtrip_and_prefixes(&rep, ObsReport::encode_into, ObsReport::decode_from);
    }
}

#[test]
fn hist_bucket_boundaries_are_exact_powers_of_two() {
    // Bucket 0 holds only zero; bucket i (i >= 1) holds [2^(i-1), 2^i - 1].
    assert_eq!(Hist::bucket_of(0), 0);
    for i in 1..64 {
        let lo = 1u64 << (i - 1);
        assert_eq!(Hist::bucket_of(lo), i, "lower bound of bucket {i}");
        assert_eq!(Hist::bucket_of(lo - 1), i - 1, "below bucket {i}");
        let hi = (1u64 << i).wrapping_sub(1);
        assert_eq!(Hist::bucket_of(hi), i, "upper bound of bucket {i}");
    }
    assert_eq!(Hist::bucket_of(u64::MAX), 64);
    for i in 1..64 {
        assert_eq!(Hist::bucket_lower_bound(i), 1u64 << (i - 1));
        assert_eq!(Hist::bucket_upper_bound(i), (1u64 << i) - 1);
    }
}

#[test]
fn hist_summary_statistics_track_added_values() {
    let mut h = Hist::new();
    for v in [0, 1, 2, 3, 1024, u64::MAX] {
        h.add(v);
    }
    assert_eq!(h.count(), 6);
    assert_eq!(h.min(), Some(0));
    assert_eq!(h.max(), Some(u64::MAX));
    let buckets: Vec<(usize, u64)> = h.nonzero_buckets().collect();
    assert_eq!(buckets, vec![(0, 1), (1, 1), (2, 2), (11, 1), (64, 1)]);
}
