//! Record/replay integration: a serialized trace must replay to the exact
//! same simulation results as the original.

use warden::pbbs::{Bench, Scale};
use warden::prelude::*;
use warden::rt::trace_io;

#[test]
fn serialized_traces_replay_identically() {
    let m = MachineConfig::dual_socket().with_cores(3);
    for bench in [Bench::Msort, Bench::Primes, Bench::Nn, Bench::Dedup] {
        let original = bench.build(Scale::Tiny);
        let mut buf = Vec::new();
        trace_io::write_trace(&mut buf, &original).unwrap();
        let restored = trace_io::read_trace(&mut buf.as_slice()).unwrap();
        restored.check_invariants().unwrap();
        for proto in [ProtocolId::Mesi, ProtocolId::Warden] {
            let a = simulate(&original, &m, proto);
            let b = simulate(&restored, &m, proto);
            assert_eq!(a.stats, b.stats, "{} {proto}", bench.name());
            assert_eq!(a.memory_image_digest, b.memory_image_digest);
            assert_eq!(a.energy, b.energy);
        }
    }
}

#[test]
fn trace_files_round_trip_through_disk() {
    let p = Bench::Tokens.build(Scale::Tiny);
    let path = std::env::temp_dir().join("warden_roundtrip_test.trace");
    {
        let mut f = std::io::BufWriter::new(std::fs::File::create(&path).unwrap());
        trace_io::write_trace(&mut f, &p).unwrap();
    }
    let mut f = std::io::BufReader::new(std::fs::File::open(&path).unwrap());
    let q = trace_io::read_trace(&mut f).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(q.name, p.name);
    assert_eq!(q.stats, p.stats);
    assert_eq!(q.memory.digest(), p.memory.digest());
}
