//! Property tests of the `warden-serve` wire protocol and the disk tier's
//! on-disk entry codec: every request and response variant must survive
//! encode→decode exactly; every strict prefix of a valid payload must fail
//! with a typed [`CodecError`] (never panic, never silently decode to
//! something else); every strict prefix of a complete *frame* must fail
//! [`read_frame`] with a typed error rather than yield a frame; and every
//! truncation or byte flip of a persisted [`DiskEntry`] must decode to a
//! typed [`CheckpointError`] — the quarantine-and-continue contract of the
//! fsck scan.

use proptest::prelude::*;
use warden::coherence::ProtocolId;
use warden::mem::codec::CodecError;
use warden::obs::{Hist, MetricsRegistry};
use warden::pbbs::{Bench, Scale};
use warden::serve::proto::{read_frame, write_frame, DEFAULT_MAX_FRAME};
use warden::serve::{
    CacheKey, DiskBody, DiskEntry, ErrorKind, FrameEvent, MachinePreset, MachineSpec,
    OutcomeSummary, Request, Response, ServeError, ServedFrom, SimRequest,
};
use warden::sim::SimStats;

fn bench() -> impl Strategy<Value = Bench> {
    (0usize..Bench::ALL.len()).prop_map(|i| Bench::ALL[i])
}

fn scale() -> impl Strategy<Value = Scale> {
    prop_oneof![Just(Scale::Tiny), Just(Scale::Paper)]
}

fn protocol() -> impl Strategy<Value = ProtocolId> {
    prop_oneof![
        Just(ProtocolId::Msi),
        Just(ProtocolId::Mesi),
        Just(ProtocolId::Warden)
    ]
}

fn machine_spec() -> impl Strategy<Value = MachineSpec> {
    let preset = prop_oneof![
        Just(MachinePreset::SingleSocket),
        Just(MachinePreset::DualSocket),
        Just(MachinePreset::Disaggregated),
        any::<u32>().prop_map(MachinePreset::ManySocket),
    ];
    // The codec must round-trip impossible machines too — rejecting them is
    // the server's job (`to_machine`), not the wire's.
    (preset, any::<bool>(), any::<u32>()).prop_map(|(preset, has_cores, cores)| MachineSpec {
        preset,
        cores_per_socket: has_cores.then_some(cores),
    })
}

/// A short machine/message string from a fixed safe alphabet (the vendored
/// proptest has no regex strategies).
fn short_string() -> impl Strategy<Value = String> {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789- _.!";
    proptest::collection::vec(0usize..ALPHABET.len(), 0..24)
        .prop_map(|ix| ix.into_iter().map(|i| ALPHABET[i] as char).collect())
}

fn sim_request() -> impl Strategy<Value = SimRequest> {
    (bench(), scale(), machine_spec(), protocol(), any::<bool>()).prop_map(
        |(bench, scale, machine, protocol, check)| SimRequest {
            bench,
            scale,
            machine,
            protocol,
            check,
        },
    )
}

fn request() -> impl Strategy<Value = Request> {
    prop_oneof![
        Just(Request::Ping),
        sim_request().prop_map(Request::Simulate),
        Just(Request::Metrics),
    ]
}

fn stats() -> impl Strategy<Value = SimStats> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(
            |(cycles, instructions, memory_accesses, tasks, steals)| SimStats {
                cycles,
                instructions,
                memory_accesses,
                tasks,
                steals,
                ..SimStats::default()
            },
        )
}

fn summary() -> impl Strategy<Value = OutcomeSummary> {
    (
        protocol(),
        short_string(),
        stats(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(
            |(protocol, machine, stats, memory_image_digest, region_peak, outcome_digest)| {
                OutcomeSummary {
                    protocol,
                    machine,
                    stats,
                    memory_image_digest,
                    region_peak,
                    outcome_digest,
                }
            },
        )
}

fn registry() -> impl Strategy<Value = MetricsRegistry> {
    (
        proptest::collection::vec(any::<u64>(), 0..6),
        proptest::collection::vec(any::<u64>(), 0..16),
    )
        .prop_map(|(counters, samples)| {
            let mut reg = MetricsRegistry::new();
            for (i, v) in counters.iter().enumerate() {
                reg.set_counter(&format!("serve.counter.{i}"), *v);
            }
            let mut h = Hist::new();
            for v in &samples {
                h.add(*v);
            }
            reg.set_hist("serve_latency_us", h);
            reg
        })
}

fn served_from() -> impl Strategy<Value = ServedFrom> {
    (0usize..ServedFrom::ALL.len()).prop_map(|i| ServedFrom::ALL[i])
}

fn cache_key() -> impl Strategy<Value = CacheKey> {
    (any::<u64>(), any::<u64>(), any::<u64>(), any::<u8>()).prop_map(
        |(options_fp, trace_fp, machine_fp, protocol)| CacheKey {
            options_fp,
            trace_fp,
            machine_fp,
            protocol,
        },
    )
}

fn disk_entry() -> impl Strategy<Value = DiskEntry> {
    let body = prop_oneof![
        (summary(), any::<u64>()).prop_map(|(summary, compute_us)| DiskBody::Result {
            summary: Box::new(summary),
            compute_us
        }),
        (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..96))
            .prop_map(|(steps, frame)| DiskBody::Checkpoint { steps, frame }),
    ];
    (cache_key(), body).prop_map(|(key, body)| DiskEntry { key, body })
}

fn response() -> impl Strategy<Value = Response> {
    prop_oneof![
        Just(Response::Pong),
        (summary(), served_from()).prop_map(|(summary, served)| Response::Outcome {
            summary: Box::new(summary),
            served
        }),
        (any::<u32>(), any::<u32>(), any::<u32>()).prop_map(
            |(queue_len, queue_cap, retry_after_ms)| Response::Busy {
                queue_len,
                queue_cap,
                retry_after_ms
            }
        ),
        (any::<u64>(), any::<u64>()).prop_map(|(len, max)| Response::TooLarge { len, max }),
        Just(Response::Draining),
        (
            prop_oneof![Just(ErrorKind::BadRequest), Just(ErrorKind::Internal)],
            short_string()
        )
            .prop_map(|(kind, msg)| Response::Error { kind, msg }),
        registry().prop_map(Response::Metrics),
        (any::<u64>(), any::<u64>()).prop_map(|(deadline_ms, elapsed_ms)| {
            Response::DeadlineExceeded {
                deadline_ms,
                elapsed_ms,
            }
        }),
    ]
}

/// Full payload decodes back to the value; every strict prefix fails with
/// a typed error.
fn assert_payload_roundtrip<T: PartialEq + std::fmt::Debug>(
    value: &T,
    bytes: &[u8],
    decode: impl Fn(&[u8]) -> Result<T, CodecError>,
) {
    let back = decode(bytes).expect("full payload decodes");
    assert_eq!(&back, value);
    for cut in 0..bytes.len() {
        match decode(&bytes[..cut]) {
            Err(_) => {}
            Ok(early) => panic!(
                "strict prefix ({cut} of {} bytes) decoded to {early:?}",
                bytes.len()
            ),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn requests_roundtrip_and_reject_prefixes(req in request()) {
        assert_payload_roundtrip(&req, &req.encode(), Request::decode);
    }

    #[test]
    fn responses_roundtrip_and_reject_prefixes(resp in response()) {
        assert_payload_roundtrip(&resp, &resp.encode(), Response::decode);
    }

    #[test]
    fn frames_roundtrip_and_reject_prefixes(req in request()) {
        let payload = req.encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload, DEFAULT_MAX_FRAME).unwrap();
        match read_frame(&mut &wire[..], DEFAULT_MAX_FRAME).unwrap() {
            FrameEvent::Frame(p) => prop_assert_eq!(p, payload),
            other => return Err(TestCaseError::fail(format!("expected frame, got {other:?}"))),
        }
        // Every strict prefix is a torn frame: a typed I/O error, never a
        // frame, never a panic. The empty prefix alone is a clean EOF.
        for cut in 0..wire.len() {
            match read_frame(&mut &wire[..cut], DEFAULT_MAX_FRAME) {
                Ok(FrameEvent::Eof) => prop_assert_eq!(cut, 0, "EOF mid-frame"),
                Ok(FrameEvent::Frame(_)) => {
                    return Err(TestCaseError::fail(format!(
                        "prefix of {cut} bytes yielded a frame"
                    )))
                }
                Ok(FrameEvent::Idle) => {
                    return Err(TestCaseError::fail("in-memory reader cannot be idle"))
                }
                Err(ServeError::Io(e)) => {
                    prop_assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof)
                }
                Err(other) => {
                    return Err(TestCaseError::fail(format!(
                        "prefix of {cut} bytes: unexpected error {other}"
                    )))
                }
            }
        }
    }

    #[test]
    fn corrupt_tags_never_panic(req in request(), pos in any::<u16>(), byte in any::<u8>()) {
        let mut bytes = req.encode();
        let i = pos as usize % bytes.len();
        bytes[i] = byte;
        // Decoding corrupted bytes may legitimately succeed (the flip can
        // be a no-op or still-valid encoding); it must simply never panic.
        let _ = Request::decode(&bytes);
    }

    #[test]
    fn disk_entries_roundtrip_and_every_prefix_is_a_typed_error(entry in disk_entry()) {
        let image = entry.encode();
        prop_assert_eq!(DiskEntry::decode(&image).expect("full image decodes"), entry);
        // The durability contract behind the fsck scan: a write torn at
        // ANY byte boundary decodes to a typed error — quarantine and
        // continue — never a panic, never a wrong entry.
        for cut in 0..image.len() {
            prop_assert!(
                DiskEntry::decode(&image[..cut]).is_err(),
                "a {cut}-byte prefix of a {}-byte entry decoded",
                image.len()
            );
        }
    }

    #[test]
    fn corrupt_disk_entries_are_typed_errors_never_wrong_data(
        entry in disk_entry(),
        pos in any::<u32>(),
        byte in any::<u8>(),
    ) {
        let mut image = entry.encode();
        let i = pos as usize % image.len();
        let original = image[i];
        image[i] = byte;
        match DiskEntry::decode(&image) {
            // The whole image — header, payload and footer — is under the
            // frame checksum, so any real flip is caught.
            Err(_) => prop_assert_ne!(byte, original),
            Ok(back) => {
                prop_assert_eq!(byte, original);
                prop_assert_eq!(back, entry);
            }
        }
    }
}
