//! Cross-crate integration: for every benchmark, the WARDen machine must be
//! *semantically transparent* — same final memory as the MESI baseline and
//! as the logical (phase-1) execution — while never behaving worse on the
//! coherence events it targets.

use warden::pbbs::{Bench, Scale};
use warden::prelude::*;

fn machine() -> MachineConfig {
    MachineConfig::dual_socket().with_cores(3)
}

#[test]
fn all_benchmarks_agree_on_final_memory() {
    let m = machine();
    for bench in Bench::ALL {
        let p = bench.build(Scale::Tiny);
        p.check_invariants()
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name()));
        let mesi = simulate(&p, &m, ProtocolId::Mesi);
        let warden = simulate(&p, &m, ProtocolId::Warden);
        assert_eq!(
            mesi.memory_image_digest,
            warden.memory_image_digest,
            "{}: protocols disagree",
            bench.name()
        );
        // And both must equal the logical execution's image over the whole
        // allocated range.
        let (lo, hi) = p.address_range;
        assert_eq!(
            mesi.final_memory.first_difference(&p.memory, lo, hi - lo),
            None,
            "{}: MESI image differs from the logical result",
            bench.name()
        );
        assert_eq!(
            warden.final_memory.first_difference(&p.memory, lo, hi - lo),
            None,
            "{}: WARDen image differs from the logical result",
            bench.name()
        );
    }
}

#[test]
fn replays_are_deterministic() {
    let m = machine();
    for bench in [Bench::Msort, Bench::Primes, Bench::Dedup] {
        let p = bench.build(Scale::Tiny);
        let a = simulate(&p, &m, ProtocolId::Warden);
        let b = simulate(&p, &m, ProtocolId::Warden);
        assert_eq!(a.stats, b.stats, "{}", bench.name());
        assert_eq!(a.memory_image_digest, b.memory_image_digest);
    }
}

#[test]
fn traces_are_deterministic_across_builds() {
    for bench in Bench::ALL {
        let a = bench.build(Scale::Tiny);
        let b = bench.build(Scale::Tiny);
        assert_eq!(a.stats, b.stats, "{}", bench.name());
        assert_eq!(a.memory.digest(), b.memory.digest(), "{}", bench.name());
    }
}

#[test]
fn warden_does_not_inflate_downgrades() {
    // Downgrades are the latency-critical events WARDen targets; across the
    // suite it must never make them worse by more than scheduling noise.
    let m = machine();
    for bench in Bench::ALL {
        let p = bench.build(Scale::Tiny);
        let mesi = simulate(&p, &m, ProtocolId::Mesi);
        let warden = simulate(&p, &m, ProtocolId::Warden);
        let (md, wd) = (
            mesi.stats.coherence.downgrades,
            warden.stats.coherence.downgrades,
        );
        assert!(
            wd as f64 <= md as f64 * 1.10 + 20.0,
            "{}: downgrades rose from {md} to {wd}",
            bench.name()
        );
    }
}

#[test]
fn region_accounting_balances() {
    let m = machine();
    for bench in [Bench::Primes, Bench::Msort, Bench::Quickhull] {
        let p = bench.build(Scale::Tiny);
        let w = simulate(&p, &m, ProtocolId::Warden);
        let c = &w.stats.coherence;
        assert_eq!(
            c.region_adds,
            c.region_removes + c.region_overflows,
            "{}: every accepted region must be removed exactly once",
            bench.name()
        );
        assert!(w.region_peak <= 1024);
    }
}

#[test]
fn different_seeds_still_agree_on_memory() {
    let p = Bench::Msort.build(Scale::Tiny);
    let base = machine();
    let digests: Vec<u64> = [1u64, 2, 3]
        .into_iter()
        .map(|seed| {
            simulate(&p, &base.clone().with_seed(seed), ProtocolId::Warden).memory_image_digest
        })
        .collect();
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "steal schedules must not change results"
    );
}
