//! Property tests of the synthetic workload generator: every generated
//! spec must build a well-formed, decodable, deterministic DRF trace, and
//! its simulation must be lane-count invariant.

use proptest::prelude::*;
use warden::prelude::*;
use warden::rt::workload::{SharingPattern, WorkloadGen, WorkloadSpec};
use warden::rt::{trace_io, TraceProgram};
use warden::sim::{simulate_with_options, SimOptions};

/// A bounded, always-valid spec: every knob inside the validated range.
fn spec_strategy() -> impl Strategy<Value = WorkloadSpec> {
    (
        0..SharingPattern::ALL.len(),
        any::<u64>(),
        2u32..=8,
        1u32..=4,
        1u32..=48,
        prop_oneof![Just(512u64), Just(2048), Just(4096), Just(16384)],
    )
        .prop_map(|(p, seed, tasks, rounds, ops, footprint)| WorkloadSpec {
            tasks,
            rounds,
            ops,
            footprint,
            ..WorkloadSpec::new(SharingPattern::ALL[p], seed)
        })
}

fn encode(p: &TraceProgram) -> Vec<u8> {
    let mut buf = Vec::new();
    trace_io::write_trace(&mut buf, p).unwrap();
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every valid spec builds (the strict in-generation scope checker is
    /// on by default, so a non-DRF pattern would panic here), passes the
    /// trace well-formedness invariants, and round-trips through the
    /// binary codec bit-exactly.
    #[test]
    fn specs_build_valid_round_trippable_traces(spec in spec_strategy()) {
        spec.validate().unwrap();
        let p = spec.build();
        p.check_invariants().unwrap();
        let buf = encode(&p);
        let q = trace_io::read_trace(&mut buf.as_slice()).unwrap();
        q.check_invariants().unwrap();
        prop_assert_eq!(p.fingerprint(), q.fingerprint());
        prop_assert_eq!(p.stats, q.stats);
        prop_assert_eq!(p.memory.digest(), q.memory.digest());
    }

    /// Building the same spec twice yields bit-identical encodings: the
    /// generator draws no entropy outside the seed.
    #[test]
    fn equal_seeds_build_bit_identical_traces(spec in spec_strategy()) {
        prop_assert_eq!(encode(&spec.build()), encode(&spec.build()));
    }

    /// Tokens round-trip: the archived-seed replay path reconstructs the
    /// exact spec.
    #[test]
    fn tokens_round_trip(spec in spec_strategy()) {
        prop_assert_eq!(WorkloadSpec::from_token(&spec.token()).unwrap(), spec);
    }

    /// The timing replay is lane-count invariant on generated traces:
    /// sharded scheduling must merge back to the sequential results.
    #[test]
    fn simulation_is_lane_count_invariant(spec in spec_strategy(), proto in 0..ProtocolId::ALL.len()) {
        let proto = ProtocolId::ALL[proto];
        let m = MachineConfig::dual_socket().with_cores(2);
        let p = spec.build();
        let sequential = simulate_with_options(&p, &m, proto, &SimOptions::default());
        let laned = simulate_with_options(&p, &m, proto, &SimOptions { lanes: 3, ..SimOptions::default() });
        prop_assert_eq!(sequential.stats, laned.stats);
        prop_assert_eq!(sequential.memory_image_digest, laned.memory_image_digest);
    }

    /// The generator stream itself is deterministic and cycles through the
    /// requested pattern set.
    #[test]
    fn generator_streams_are_seed_deterministic(seed in any::<u64>(), n in 1usize..24) {
        let a: Vec<WorkloadSpec> = WorkloadGen::new(seed).take(n).collect();
        let b: Vec<WorkloadSpec> = WorkloadGen::new(seed).take(n).collect();
        prop_assert_eq!(&a, &b);
        for (i, s) in a.iter().enumerate() {
            s.validate().unwrap();
            prop_assert_eq!(s.pattern, SharingPattern::ALL[i % SharingPattern::ALL.len()]);
        }
    }
}
