//! The protocol zoo's N-way differential-testing lab.
//!
//! Every protocol registered behind the [`Protocol`] trait must be
//! *semantically interchangeable* on data-race-free programs: same final
//! memory image on every benchmark, a sound per-level access partition,
//! and identical per-core observed-value sequences on hand-built DRF
//! traces. The lab checks all pairs by checking every protocol against a
//! single reference (pairwise equality follows by transitivity), with the
//! invariant checker armed the whole time.
//!
//! The second half proves the per-protocol invariant sets are *alive*:
//! each seeded protocol mutation — a deliberately broken state machine —
//! must be caught by its protocol's own checker on at least one benchmark.

use warden::coherence::{
    CacheConfig, CoherenceSystem, LatencyModel, ProtocolId, ProtocolMutation, Topology,
};
use warden::pbbs::{Bench, Scale};
use warden::prelude::*;
use warden::sim::{simulate_with_options, FaultPlan, SimOptions};

fn machine() -> MachineConfig {
    MachineConfig::dual_socket().with_cores(3)
}

fn checked_opts() -> SimOptions {
    SimOptions {
        check: true,
        obs: true,
        ..SimOptions::default()
    }
}

/// All pairs agree on the final memory image, and every protocol's cache
/// levels partition its accesses, on every benchmark in the suite.
#[test]
fn all_protocol_pairs_agree_on_every_benchmark() {
    let m = machine();
    let opts = checked_opts();
    for bench in Bench::ALL {
        let p = bench.build(Scale::Tiny);
        let outcomes: Vec<SimOutcome> = ProtocolId::ALL
            .iter()
            .map(|&proto| simulate_with_options(&p, &m, proto, &opts))
            .collect();
        let (lo, hi) = p.address_range;
        for out in &outcomes {
            // Against the logical execution (and therefore against every
            // other protocol: all equal the same reference).
            assert_eq!(
                out.final_memory.first_difference(&p.memory, lo, hi - lo),
                None,
                "{}/{}: image differs from the logical result",
                bench.name(),
                out.protocol
            );
            assert_eq!(
                out.memory_image_digest,
                outcomes[0].memory_image_digest,
                "{}/{}: digest diverged from {}",
                bench.name(),
                out.protocol,
                outcomes[0].protocol
            );
            assert!(
                out.violations.is_empty(),
                "{}/{}: {} invariant violation(s); first: {}",
                bench.name(),
                out.protocol,
                out.violations.len(),
                out.violations[0]
            );
            // The cache levels must partition the accesses exactly (the
            // stale-W retry re-enters the directory, hence the correction
            // term). DLS serves everything at the LLC, so its l1/l2 terms
            // are zero — the identity still must balance.
            let c = &out.stats.coherence;
            assert_eq!(
                c.l1_hits + c.l2_hits + c.llc_hits + c.llc_misses,
                c.accesses() + c.ward_stale_retries,
                "{}/{}: cache levels do not partition the accesses",
                bench.name(),
                out.protocol
            );
        }
    }
}

/// The lazy protocols must not pay for machinery they do not use: no WARD
/// regions outside WARDen, no private-cache traffic under DLS.
#[test]
fn protocol_specific_stats_stay_in_their_lane() {
    let m = machine();
    let p = Bench::Msort.build(Scale::Tiny);
    for proto in ProtocolId::ALL {
        let out = simulate(&p, &m, proto);
        let c = &out.stats.coherence;
        if proto != ProtocolId::Warden {
            assert_eq!(c.region_adds, 0, "{proto}: regions outside WARDen");
            assert_eq!(
                c.ward_serves == 0,
                proto != ProtocolId::SelfInv,
                "{proto}: only self-invalidation serves ward copies outside regions"
            );
        }
        if proto == ProtocolId::Dls {
            assert_eq!(c.l1_hits + c.l2_hits, 0, "DLS must never fill privately");
            assert_eq!(c.invalidations, 0, "DLS has nothing to invalidate");
        }
    }
}

/// Replay each protocol twice: the zoo must be deterministic so the
/// differential comparisons mean something.
#[test]
fn every_protocol_replays_deterministically() {
    let m = machine();
    let p = Bench::Dedup.build(Scale::Tiny);
    for proto in ProtocolId::ALL {
        let a = simulate(&p, &m, proto);
        let b = simulate(&p, &m, proto);
        assert_eq!(a.stats, b.stats, "{proto}: stats drifted between replays");
        assert_eq!(a.memory_image_digest, b.memory_image_digest, "{proto}");
    }
}

// ---------------------------------------------------------------------------
// DRF observed-value sequences
// ---------------------------------------------------------------------------

fn zoo_system(proto: ProtocolId) -> CoherenceSystem {
    CoherenceSystem::new(
        Topology::new(2, 2),
        LatencyModel::xeon_gold_6126(),
        CacheConfig::paper(2),
        proto,
    )
}

/// Drive a hand-built data-race-free script through the raw coherence
/// engine under one protocol, recording what each core observes after
/// every load. Sharing is always separated by sync points (`task_sync` on
/// the releasing writer, then on the acquiring reader), which is exactly
/// the discipline a DRF fork-join program gives the hardware.
fn drf_observed_sequences(proto: ProtocolId) -> Vec<Vec<u64>> {
    let mut sys = zoo_system(proto);
    sys.enable_checker();
    let ncores = 4usize;
    let mut seen: Vec<Vec<u64>> = vec![Vec::new(); ncores];
    let base = |c: usize| Addr(0x1_0000 + (c as u64) * PAGE_SIZE);
    let shared = Addr(0x8_0000);

    for round in 0..6u64 {
        // Phase 1: private work — each core mutates its own page freely.
        for (c, seen_c) in seen.iter_mut().enumerate().take(ncores) {
            for i in 0..8u64 {
                let a = Addr(base(c).0 + i * 8);
                sys.store(c, a, &(round * 100 + i).to_le_bytes());
                sys.load(c, a, 8);
                seen_c.push(sys.observe(c, a, 8));
            }
        }
        // Phase 2: producer publishes, then every consumer acquires.
        let producer = (round as usize) % ncores;
        for i in 0..4u64 {
            let a = Addr(shared.0 + i * 8);
            sys.store(producer, a, &(round * 1000 + i).to_le_bytes());
        }
        sys.task_sync(producer); // release
        for (c, seen_c) in seen.iter_mut().enumerate().take(ncores) {
            if c == producer {
                continue;
            }
            sys.task_sync(c); // acquire
            for i in 0..4u64 {
                let a = Addr(shared.0 + i * 8);
                sys.load(c, a, 8);
                seen_c.push(sys.observe(c, a, 8));
            }
            sys.task_sync(c); // release the read-only epoch before the
                              // next round's producer overwrites
        }
        // An atomic on a fresh block is a sync point on its own.
        let counter = Addr(0x9_0000);
        sys.rmw_add(producer, counter, 8, 1);
        seen[producer].push(sys.observe(producer, counter, 8));
        sys.task_sync(producer);
    }
    assert!(
        sys.violations().is_empty(),
        "{proto}: checker tripped on a DRF script: {}",
        sys.violations()[0]
    );
    let image = sys.final_memory_image();
    // Fold the final image digest in as a last pseudo-observation so image
    // divergence fails loudly here too.
    seen.push(vec![image.digest()]);
    seen
}

#[test]
fn drf_scripts_observe_identical_values_under_every_protocol() {
    let reference = drf_observed_sequences(ProtocolId::ALL[0]);
    for &proto in &ProtocolId::ALL[1..] {
        let got = drf_observed_sequences(proto);
        assert_eq!(
            got,
            reference,
            "{proto}: observed-value sequences diverged from {}",
            ProtocolId::ALL[0]
        );
    }
}

// ---------------------------------------------------------------------------
// Seeded mutations: each new protocol's invariant set must be alive
// ---------------------------------------------------------------------------

/// The probe benches used for mutation detection — small but exercising
/// forks, steals, and shared data.
const PROBES: [Bench; 4] = [Bench::MakeArray, Bench::Msort, Bench::Primes, Bench::Dedup];

fn mutation_is_caught(proto: ProtocolId, mutation: ProtocolMutation) -> bool {
    let m = machine();
    PROBES.iter().any(|bench| {
        let p = bench.build(Scale::Tiny);
        let opts = SimOptions {
            check: true,
            faults: Some(FaultPlan::mutation_only(1, mutation)),
            ..SimOptions::default()
        };
        let out = simulate_with_options(&p, &m, proto, &opts);
        !out.violations.is_empty()
    })
}

#[test]
fn self_invalidation_mutations_are_detected() {
    for mutation in [
        ProtocolMutation::SkipSelfInvalidate,
        ProtocolMutation::SkipSelfDowngrade,
        ProtocolMutation::SkipWardRegistration,
    ] {
        assert!(
            mutation_is_caught(ProtocolId::SelfInv, mutation),
            "{mutation:?} escaped the self-invalidation invariant set on every probe bench"
        );
    }
}

#[test]
fn dls_mutations_are_detected() {
    for mutation in [
        ProtocolMutation::DlsCachePrivate,
        ProtocolMutation::DlsDirtyPrivate,
        ProtocolMutation::DlsSkipLlcDirty,
    ] {
        assert!(
            mutation_is_caught(ProtocolId::Dls, mutation),
            "{mutation:?} escaped the DLS invariant set on every probe bench"
        );
    }
}

/// The flip side: with no mutation injected, the same probes are clean
/// under every protocol — the detectors above are signal, not noise.
#[test]
fn unmutated_probes_are_clean_under_every_protocol() {
    let m = machine();
    let opts = checked_opts();
    for proto in ProtocolId::ALL {
        for bench in PROBES {
            let p = bench.build(Scale::Tiny);
            let out = simulate_with_options(&p, &m, proto, &opts);
            assert!(
                out.violations.is_empty(),
                "{}/{proto}: spurious violation: {}",
                bench.name(),
                out.violations[0]
            );
        }
    }
}
