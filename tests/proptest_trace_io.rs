//! Property tests of the trace serializer: arbitrary runtime programs must
//! round-trip exactly, and arbitrary byte soup must never panic the reader.

use proptest::prelude::*;
use warden::prelude::*;
use warden::rt::{trace_io, TraceProgram};

/// A small random program: a mix of allocations, writes, atomics and forks
/// driven by a script of opcodes.
fn build(script: Vec<u8>) -> TraceProgram {
    trace_program("prop", RtOptions::default(), move |ctx| {
        let xs = ctx.alloc::<u64>(64);
        for (idx, &op) in script.iter().enumerate() {
            let i = idx as u64;
            match op % 6 {
                0 => ctx.write(&xs, i % 64, op as u64),
                1 => {
                    let _ = ctx.read(&xs, i % 64);
                }
                2 => {
                    let _ = ctx.fetch_add(&xs, i % 64, u64::from(op));
                }
                3 => ctx.work(u64::from(op) + 1),
                4 => {
                    let v = u64::from(op);
                    ctx.fork2(
                        |c| {
                            let s = c.alloc_scratch::<u64>(4);
                            c.write(&s, 0, v);
                        },
                        |c| c.work(v + 1),
                    );
                }
                _ => {
                    let cur = ctx.peek(&xs, i % 64);
                    let _ = ctx.cas(&xs, i % 64, cur, cur + 1);
                }
            }
        }
    })
}

/// Replays the shrunk input recorded in
/// `proptest_trace_io.proptest-regressions` as a plain unit test: opcode 191
/// (CAS) followed by 32 (fork) once tripped a round-trip mismatch.
#[test]
fn regression_script_191_32_round_trips() {
    let p = build(vec![191, 32]);
    let mut buf = Vec::new();
    trace_io::write_trace(&mut buf, &p).unwrap();
    let q = trace_io::read_trace(&mut buf.as_slice()).unwrap();
    assert_eq!(q.name, p.name);
    assert_eq!(q.stats, p.stats);
    assert_eq!(q.tasks.len(), p.tasks.len());
    for (a, b) in p.tasks.iter().zip(&q.tasks) {
        assert_eq!(a.events, b.events);
    }
    assert_eq!(q.memory.digest(), p.memory.digest());
    let m = MachineConfig::single_socket().with_cores(2);
    let a = simulate(&p, &m, ProtocolId::Warden);
    let b = simulate(&q, &m, ProtocolId::Warden);
    assert_eq!(a.stats, b.stats);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbitrary_programs_round_trip(script in proptest::collection::vec(any::<u8>(), 0..80)) {
        let p = build(script);
        let mut buf = Vec::new();
        trace_io::write_trace(&mut buf, &p).unwrap();
        let q = trace_io::read_trace(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(&q.name, &p.name);
        prop_assert_eq!(q.stats, p.stats);
        prop_assert_eq!(q.tasks.len(), p.tasks.len());
        for (a, b) in p.tasks.iter().zip(&q.tasks) {
            prop_assert_eq!(&a.events, &b.events);
        }
        prop_assert_eq!(q.memory.digest(), p.memory.digest());
        // And the deserialized trace simulates identically.
        let m = MachineConfig::single_socket().with_cores(2);
        let a = simulate(&p, &m, ProtocolId::Warden);
        let b = simulate(&q, &m, ProtocolId::Warden);
        prop_assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn garbage_never_panics_the_reader(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        // Any outcome is fine except a panic.
        let _ = trace_io::read_trace(&mut bytes.as_slice());
    }

    #[test]
    fn valid_prefix_with_garbage_tail_never_panics(
        script in proptest::collection::vec(any::<u8>(), 0..30),
        tail in proptest::collection::vec(any::<u8>(), 0..64),
        cut in 8usize..200,
    ) {
        let p = build(script);
        let mut buf = Vec::new();
        trace_io::write_trace(&mut buf, &p).unwrap();
        let cut = cut.min(buf.len());
        buf.truncate(cut);
        buf.extend(tail);
        let _ = trace_io::read_trace(&mut buf.as_slice());
    }
}
