//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the API subset its property tests use:
//!
//! * [`strategy::Strategy`] with `prop_map`, `prop_recursive` and `boxed`,
//! * range and `any::<T>()` strategies, tuple strategies, and
//!   [`collection::vec`],
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`] and [`prop_assert_ne!`] macros, and
//! * a deterministic [`test_runner::TestRunner`] seeded per test name, so
//!   failures are reproducible run-to-run.
//!
//! Differences from upstream: generation is not size-driven, failing cases
//! are reported (with their full `Debug` form and the case seed) but not
//! shrunk, and `proptest-regressions` files are not consulted — regression
//! inputs worth keeping are committed as explicit unit tests instead.

#![forbid(unsafe_code)]

/// Strategy trait and combinators.
pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::{Rng, SampleRange};
    use std::fmt::Debug;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value: Debug;

        /// Generate one value.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Build a recursive strategy: `self` generates leaves, and
        /// `recurse` wraps an inner strategy into a branch strategy.
        /// `depth` bounds the nesting; `_desired_size` and
        /// `_expected_branch_size` are accepted for API compatibility.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf: BoxedStrategy<Self::Value> = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                // At each level: half leaves, half branches of the level
                // below — expected size stays bounded by construction.
                strat = Union {
                    options: vec![leaf.clone(), recurse(strat).boxed()],
                }
                .boxed();
            }
            strat
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Arc::new(self),
            }
        }
    }

    /// Object-safe view of a strategy (implementation detail of
    /// [`BoxedStrategy`]).
    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut SmallRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut SmallRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A cloneable, type-erased strategy.
    pub struct BoxedStrategy<T> {
        inner: Arc<dyn DynStrategy<T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            self.inner.generate_dyn(rng)
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut SmallRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between same-valued strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T: Debug> Union<T> {
        /// Build from pre-boxed options.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    /// `any::<T>()`: the full uniform distribution of `T`.
    pub struct Any<T>(PhantomData<T>);

    /// The full uniform distribution of `T`.
    pub fn any<T: rand::StandardSample + Debug>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: rand::StandardSample + Debug> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            rng.gen::<T>()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut SmallRng) -> f64 {
            self.clone().sample_single(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, G);
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A length range for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty size range");
            SizeRange {
                lo,
                hi_exclusive: hi + 1,
            }
        }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` of values from `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test execution: configuration, runner, and failure type.
pub mod test_runner {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Runner configuration (`#![proptest_config(...)]`).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Config {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            Config {
                cases,
                max_shrink_iters: 0,
            }
        }
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Config {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    /// A failed property: the rejection message.
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        /// Why the case failed.
        pub message: String,
    }

    impl TestCaseError {
        /// Build a failure from a message.
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Drives the cases of one property test.
    pub struct TestRunner {
        config: Config,
        name: &'static str,
        rng: SmallRng,
    }

    impl TestRunner {
        /// A deterministic runner for the named test. The seed mixes the
        /// test name with `PROPTEST_SEED` (default 0), so different tests
        /// explore different streams but every run repeats the last.
        pub fn new(config: Config, name: &'static str) -> TestRunner {
            let base: u64 = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0);
            let mut h = 0xcbf2_9ce4_8422_2325u64 ^ base;
            for b in name.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
            }
            TestRunner {
                config,
                name,
                rng: SmallRng::seed_from_u64(h),
            }
        }

        /// Run `test` against `config.cases` generated inputs, panicking
        /// with a reproducible report on the first failure.
        pub fn run<S: Strategy>(
            &mut self,
            strategy: &S,
            mut test: impl FnMut(S::Value) -> Result<(), TestCaseError>,
        ) {
            for case in 0..self.config.cases {
                let case_seed = self.rng.next_u64();
                let mut case_rng = SmallRng::seed_from_u64(case_seed);
                let value = strategy.generate(&mut case_rng);
                let repr = format!("{value:?}");
                let outcome = catch_unwind(AssertUnwindSafe(|| test(value)));
                let failure = match outcome {
                    Ok(Ok(())) => continue,
                    Ok(Err(e)) => e.message,
                    Err(panic) => {
                        let msg = panic
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_string())
                            .or_else(|| panic.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "test panicked".to_string());
                        format!("panic: {msg}")
                    }
                };
                panic!(
                    "proptest {name}: case {case}/{total} failed: {failure}\n\
                     input: {repr}\n\
                     (case seed {case_seed:#x}; set PROPTEST_SEED to reproduce the run)",
                    name = self.name,
                    total = self.config.cases,
                );
            }
        }
    }
}

/// The commonly used items, for glob import.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Reject the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Reject the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Reject the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body against generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let strategy = ($($strat,)+);
                let mut runner =
                    $crate::test_runner::TestRunner::new($cfg, stringify!($name));
                runner.run(&strategy, |($($arg,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::Config::default()) $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug)]
    enum Tree {
        #[allow(dead_code)]
        Leaf(u8),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 0usize..4, b in any::<u8>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
            let _ = b;
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
        }

        #[test]
        fn oneof_and_map_work(v in prop_oneof![
            (0u64..10).prop_map(|n| n * 2),
            (100u64..110).prop_map(|n| n + 1),
        ]) {
            prop_assert!(v % 2 == 0 && v < 20 || (101..111).contains(&v));
        }

        #[test]
        fn recursion_is_depth_bounded(t in (0u8..255).prop_map(Tree::Leaf)
            .prop_recursive(4, 32, 2, |inner| {
                (inner.clone(), inner)
                    .prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            }))
        {
            prop_assert!(depth(&t) <= 4);
        }
    }

    #[test]
    fn failures_report_input() {
        let result = std::panic::catch_unwind(|| {
            let mut runner =
                crate::test_runner::TestRunner::new(ProptestConfig::with_cases(16), "demo_failure");
            runner.run(&(0u64..100,), |(x,)| {
                if x >= 1 {
                    return Err(TestCaseError::fail("too big"));
                }
                Ok(())
            });
        });
        let msg = *result
            .expect_err("must fail")
            .downcast::<String>()
            .expect("panic message");
        assert!(msg.contains("too big") && msg.contains("input:"), "{msg}");
    }

    #[test]
    fn runs_are_deterministic() {
        let collect = || {
            let mut out = Vec::new();
            let mut runner =
                crate::test_runner::TestRunner::new(ProptestConfig::with_cases(10), "determinism");
            runner.run(&(0u64..1000,), |(x,)| {
                out.push(x);
                Ok(())
            });
            out
        };
        assert_eq!(collect(), collect());
    }
}
