//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small API subset it actually uses: a deterministic
//! seedable generator ([`rngs::SmallRng`], SplitMix64 underneath) and the
//! [`Rng`] / [`SeedableRng`] traits with `gen`, `gen_range` and `fill`.
//!
//! The stream differs from upstream `rand`'s SmallRng (xoshiro), which is
//! fine for this repository: seeds select deterministic schedules and
//! synthetic inputs, and nothing depends on upstream's exact values.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 pseudo-random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 pseudo-random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types the `Standard` distribution (i.e. [`Rng::gen`]) can produce.
pub trait StandardSample: Sized {
    /// Draw one uniformly distributed value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly (the argument of
/// [`Rng::gen_range`]).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64 + 1;
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_range_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardSample>::standard_sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly distributed value of `T`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// A uniform draw from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl<R: RngCore> Rng for R {}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SmallRng {
        /// The raw internal state. Since [`SeedableRng::seed_from_u64`]
        /// installs the seed as the state verbatim, `seed_from_u64(state())`
        /// reconstructs the generator exactly — the hook checkpointing code
        /// relies on to snapshot and restore RNG position mid-stream.
        pub fn state(&self) -> u64 {
            self.state
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            SmallRng { state: seed }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u8 = r.gen_range(0..=255);
            let _ = w;
            let f: f64 = r.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn state_snapshot_resumes_stream_exactly() {
        let mut a = SmallRng::seed_from_u64(99);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = SmallRng::seed_from_u64(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_produces_varied_bools() {
        let mut r = SmallRng::seed_from_u64(1);
        let n = (0..1000).filter(|_| r.gen::<bool>()).count();
        assert!((300..700).contains(&n));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = SmallRng::seed_from_u64(1);
        let _: u64 = r.gen_range(5..5);
    }
}
