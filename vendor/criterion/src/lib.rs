//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the API subset its benches use: [`Criterion`] with
//! `bench_function` / `benchmark_group`, [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros. Each bench runs a short warmup followed by a
//! fixed measurement window and prints mean ± spread — enough to spot
//! order-of-magnitude regressions, without upstream's statistics machinery.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// An opaque barrier against constant-folding; same contract as upstream.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A bench identifier: `group/parameter` in reports.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with an explicit function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id labelled only by its parameter value.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Drives one benchmark's timing loop.
pub struct Bencher {
    total: Duration,
    iters: u64,
    budget: Duration,
}

impl Bencher {
    /// Time `f` repeatedly until the measurement budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup: one untimed call (fills caches, resolves lazy statics).
        black_box(f());
        let deadline = Instant::now() + self.budget;
        loop {
            let t0 = Instant::now();
            black_box(f());
            self.total += t0.elapsed();
            self.iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name:<48} (no measurements)");
            return;
        }
        let per = self.total / self.iters as u32;
        println!("{name:<48} {per:>12.2?}/iter over {} iters", self.iters);
    }
}

/// Top-level harness handle, mirroring upstream's `Criterion`.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // Keep CI wall-clock sane; override with CRITERION_BUDGET_MS.
        let ms = std::env::var("CRITERION_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300);
        Criterion {
            budget: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    fn run_one(&mut self, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
            budget: self.budget,
        };
        f(&mut b);
        b.report(name);
    }

    /// Benchmark a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        self.run_one(name, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
        }
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmark one function within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        self.c.run_one(&name, &mut f);
        self
    }

    /// Benchmark one function with an explicit input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        self.c.run_one(&name, &mut |b| f(b, input));
        self
    }

    /// Close the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Declare a bench entry point running the given target functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with `--test`; skip the (slow)
            // measurement loops there and under `--list`.
            let args: Vec<String> = std::env::args().collect();
            if args.iter().any(|a| a == "--test" || a == "--list") {
                if args.iter().any(|a| a == "--list") {
                    // Nothing to list: benches are not libtest tests.
                }
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            budget: Duration::from_millis(5),
        };
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("w").to_string(), "w");
    }
}
